//! The locking barrier table inside a big router (paper §4.1, Figure 6).
//!
//! Each big router keeps a small table of *lock barriers*. A barrier is
//! installed for a lock address when the first exclusive lock request
//! (`GetX`) for that address is transferred through the router. While the
//! barrier lives, subsequent `GetX` requests for the same address are
//! *stopped*: an early-invalidation (EI) entry is created to track the
//! four phases of the interception —
//!
//! 1. `Inv` — the early invalidation packet is generated,
//! 2. `GetXFwd` — the stopped request is converted to a `FwdGetX` and
//!    forwarded to the home node,
//! 3. `InvAck` — the acknowledgement for the early invalidation returns
//!    to this router,
//! 4. `AckFwd` — the acknowledgement is relayed to the home node.
//!
//! A barrier's TTL (128 cycles by default) counts down only while the
//! barrier has no live EI entries and resets whenever one is created; the
//! barrier is deleted when the TTL reaches zero. When the table is full,
//! requests pass through as in a normal router.
//!
//! The protocol-relevant state lives in the pure [`BarrierFsm`]; the
//! [`LockingBarrierTable`] wraps it with the [`BarrierStats`] counters.
//! The `inpg-analysis` model checker drives `BarrierFsm` directly,
//! treating TTL expiry as a nondeterministic transition
//! ([`BarrierFsm::force_expire`]) instead of counting cycles.

use inpg_sim::{Addr, CoreId};

/// One barrier table's live entries, as reported by
/// [`LockingBarrierTable::snapshot`]: `(lock address, ttl, live EIs)`.
pub type BarrierSnapshot = Vec<(Addr, u32, usize)>;

/// Progress of one early invalidation (paper Figure 6's 4-phase entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EiPhase {
    /// Early `Inv` generated and `FwdGetX` relayed; awaiting the ack.
    AwaitingAck,
    /// Ack received and relayed to the home node; entry about to be freed.
    Complete,
}

/// One early-invalidation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EiEntry {
    /// The core whose stopped `GetX` this entry tracks.
    pub core: CoreId,
    /// Current phase.
    pub phase: EiPhase,
}

/// One lock barrier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Barrier {
    /// The lock's block address.
    pub addr: Addr,
    /// Remaining TTL in cycles.
    pub ttl: u32,
    /// Live early-invalidation entries.
    pub eis: Vec<EiEntry>,
}

/// What [`BarrierFsm::observe_transfer`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observe {
    /// A new barrier was installed.
    Installed,
    /// A barrier for the block already exists.
    AlreadyPresent,
    /// The table is full; the request passes through.
    TableFull,
}

/// What [`BarrierFsm::take_ack`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeAck {
    /// A matching EI entry completed; the caller relays the ack.
    Relayed,
    /// No matching entry: the ack is stale and dropped.
    Stale,
}

/// Health of one big router's barrier table — the graceful-degradation
/// state machine.
///
/// A table under resource pressure (barrier slots or the EI pool
/// exhausted) is *Degraded*: requests pass through like in a normal
/// router until the backlog drains, at which point the table heals. A
/// *PassThrough* table has failed permanently (injected router failure):
/// it intercepts nothing for the rest of the run, while in-flight early
/// acknowledgements still drain to the home node via the stale-ack relay
/// path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RouterHealth {
    /// Full iNPG interception service.
    #[default]
    Healthy,
    /// Resource pressure: new requests pass through until the table
    /// drains, then the router heals itself.
    Degraded,
    /// Permanent failure: pass-through (Original behaviour) for the rest
    /// of the run.
    PassThrough,
}

impl std::fmt::Display for RouterHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterHealth::Healthy => f.write_str("healthy"),
            RouterHealth::Degraded => f.write_str("degraded"),
            RouterHealth::PassThrough => f.write_str("pass-through"),
        }
    }
}

/// The pure, timing-free barrier state machine: barriers, EI entries and
/// the pool bound — everything the interception protocol depends on,
/// with no statistics and no wall-clock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BarrierFsm {
    /// Live barriers in installation order.
    pub barriers: Vec<Barrier>,
    capacity: usize,
    ei_capacity: usize,
    ei_in_use: usize,
    default_ttl: u32,
}

impl BarrierFsm {
    /// Creates the state machine with `capacity` lock barriers, a shared
    /// pool of `ei_capacity` EI entries and the given TTL in cycles.
    pub fn new(capacity: usize, ei_capacity: usize, default_ttl: u32) -> Self {
        BarrierFsm {
            barriers: Vec::with_capacity(capacity.min(64)),
            capacity,
            ei_capacity,
            ei_in_use: 0,
            default_ttl,
        }
    }

    /// Records that a `GetX` for `addr` was transferred through this
    /// router, installing a barrier if none exists and the table has
    /// space.
    pub fn observe_transfer(&mut self, addr: Addr) -> Observe {
        let addr = addr.block();
        if self.barrier_index(addr).is_some() {
            return Observe::AlreadyPresent;
        }
        if self.barriers.len() >= self.capacity {
            return Observe::TableFull;
        }
        self.barriers.push(Barrier { addr, ttl: self.default_ttl, eis: Vec::new() });
        Observe::Installed
    }

    /// Whether a `GetX` for `addr` arriving now would be stopped: a
    /// barrier exists and the EI pool has space.
    pub fn should_stop(&self, addr: Addr) -> bool {
        self.barrier_index(addr.block()).is_some() && self.ei_in_use < self.ei_capacity
    }

    /// Whether a barrier for `addr` currently exists (regardless of EI
    /// pool occupancy).
    pub fn has_barrier(&self, addr: Addr) -> bool {
        self.barrier_index(addr.block()).is_some()
    }

    /// Stops a `GetX` from `core`: creates an EI entry in the
    /// `AwaitingAck` phase and resets the barrier's TTL. Returns `false`
    /// (without changing state) when no barrier exists or the EI pool is
    /// exhausted — callers gate on [`should_stop`](Self::should_stop).
    #[must_use]
    pub fn stop(&mut self, addr: Addr, core: CoreId) -> bool {
        let addr = addr.block();
        if self.ei_in_use >= self.ei_capacity {
            return false;
        }
        let default_ttl = self.default_ttl;
        let Some(idx) = self.barrier_index(addr) else { return false };
        let barrier = &mut self.barriers[idx];
        barrier.ttl = default_ttl;
        barrier.eis.push(EiEntry { core, phase: EiPhase::AwaitingAck });
        self.ei_in_use += 1;
        true
    }

    /// Consumes the early acknowledgement from `core` for `addr`: a
    /// matching `AwaitingAck` entry completes the `InvAck` and `AckFwd`
    /// phases together and is freed.
    pub fn take_ack(&mut self, addr: Addr, core: CoreId) -> TakeAck {
        let addr = addr.block();
        let Some(idx) = self.barrier_index(addr) else {
            return TakeAck::Stale;
        };
        let barrier = &mut self.barriers[idx];
        let Some(pos) = barrier
            .eis
            .iter()
            .position(|ei| ei.core == core && ei.phase == EiPhase::AwaitingAck)
        else {
            return TakeAck::Stale;
        };
        barrier.eis.remove(pos);
        self.ei_in_use -= 1;
        TakeAck::Relayed
    }

    /// Advances one cycle: barriers with no live EI entries count down
    /// and expire at zero. Returns the number of expired barriers.
    pub fn tick(&mut self) -> u64 {
        let mut expired = 0;
        self.barriers.retain_mut(|barrier| {
            if barrier.eis.is_empty() {
                barrier.ttl = barrier.ttl.saturating_sub(1);
                if barrier.ttl == 0 {
                    expired += 1;
                    return false;
                }
            }
            true
        });
        expired
    }

    /// Expires the barrier for `addr` immediately if it exists and has no
    /// live EI entries — the model checker's nondeterministic stand-in
    /// for TTL countdown (a barrier without live EIs may expire at *any*
    /// time, so every such state must tolerate expiry).
    pub fn force_expire(&mut self, addr: Addr) -> bool {
        let addr = addr.block();
        let Some(idx) = self.barrier_index(addr) else { return false };
        if !self.barriers[idx].eis.is_empty() {
            return false;
        }
        self.barriers.remove(idx);
        true
    }

    /// Live barrier count.
    pub fn barrier_count(&self) -> usize {
        self.barriers.len()
    }

    /// Live EI entries across all barriers.
    pub fn ei_count(&self) -> usize {
        self.ei_in_use
    }

    /// The TTL barriers are installed (and refreshed) with.
    pub fn default_ttl(&self) -> u32 {
        self.default_ttl
    }

    /// Snapshot of the live barriers: `(lock block, ttl, live EI
    /// entries)` per entry.
    pub fn snapshot(&self) -> BarrierSnapshot {
        self.barriers.iter().map(|b| (b.addr, b.ttl, b.eis.len())).collect()
    }

    /// Discards every barrier and EI entry (fault injection: the table
    /// loses its state mid-run).
    pub fn flush(&mut self) {
        self.barriers.clear();
        self.ei_in_use = 0;
    }

    /// Forces every live barrier's TTL to `ttl` cycles (fault injection).
    pub fn set_all_ttls(&mut self, ttl: u32) {
        for barrier in &mut self.barriers {
            barrier.ttl = ttl.max(1);
        }
    }

    /// Clamps the shared EI pool to at most `capacity` entries (fault
    /// injection: pool exhaustion).
    pub fn clamp_ei_capacity(&mut self, capacity: usize) {
        self.ei_capacity = self.ei_capacity.min(capacity);
    }

    fn barrier_index(&self, addr: Addr) -> Option<usize> {
        self.barriers.iter().position(|b| b.addr == addr)
    }
}

/// Counters the barrier table exposes for evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Barriers installed over the run.
    pub barriers_installed: u64,
    /// Barriers that expired via TTL.
    pub barriers_expired: u64,
    /// GetX requests stopped (early invalidations generated).
    pub requests_stopped: u64,
    /// GetX requests that passed because the table or EI pool was full.
    pub passes_table_full: u64,
    /// Early acknowledgements matched and relayed.
    pub acks_relayed: u64,
    /// Router-sink packets that matched no EI entry and were dropped.
    pub stale_acks_dropped: u64,
    /// Times this table entered the Degraded health state.
    pub degraded_transitions: u64,
    /// 1 while this table is permanently pass-through (summing the field
    /// across routers counts the failed population).
    pub in_pass_through: u64,
}

/// The locking barrier table of one big router: the [`BarrierFsm`] plus
/// its statistics.
///
/// # Example
///
/// ```
/// use inpg_noc::barrier::LockingBarrierTable;
/// use inpg_sim::{Addr, CoreId};
///
/// let mut table = LockingBarrierTable::new(16, 16, 128);
/// let lock = Addr::new(0x8000);
/// // First GetX transfers: installs the barrier, passes through.
/// assert!(!table.should_stop(lock));
/// table.observe_transfer(lock);
/// // Second GetX for the same lock is stopped.
/// assert!(table.should_stop(lock));
/// table.stop(lock, CoreId::new(9));
/// // The loser's ack comes back and is relayed.
/// assert!(table.take_ack(lock, CoreId::new(9)));
/// ```
#[derive(Debug, Clone)]
pub struct LockingBarrierTable {
    fsm: BarrierFsm,
    stats: BarrierStats,
    health: RouterHealth,
}

impl LockingBarrierTable {
    /// Creates a table with `capacity` lock barriers, `ei_capacity`
    /// early-invalidation entries (a pool shared across barriers) and the
    /// given TTL in cycles.
    pub fn new(capacity: usize, ei_capacity: usize, default_ttl: u32) -> Self {
        LockingBarrierTable {
            fsm: BarrierFsm::new(capacity, ei_capacity, default_ttl),
            stats: BarrierStats::default(),
            health: RouterHealth::Healthy,
        }
    }

    /// The table's current health state.
    pub fn health(&self) -> RouterHealth {
        self.health
    }

    /// Fails the router's table permanently: all barrier and EI state is
    /// discarded and the router passes every request through (Original
    /// behaviour) for the rest of the run. In-flight early acks still
    /// drain via the stale-ack relay path.
    pub fn fail(&mut self) {
        self.fsm.flush();
        self.health = RouterHealth::PassThrough;
        self.stats.in_pass_through = 1;
    }

    /// Marks resource pressure: a Healthy table degrades (pass-through
    /// until it drains). Degraded and PassThrough tables stay put.
    fn note_pressure(&mut self) {
        match self.health {
            RouterHealth::Healthy => {
                self.health = RouterHealth::Degraded;
                self.stats.degraded_transitions += 1;
            }
            RouterHealth::Degraded | RouterHealth::PassThrough => {}
        }
    }

    /// The pure protocol state (for invariant checks and diagnostics).
    pub fn fsm(&self) -> &BarrierFsm {
        &self.fsm
    }

    /// Records that a `GetX` for `addr` was transferred through this
    /// router, installing a barrier if none exists and the table has
    /// space. Returns `true` if a new barrier was installed.
    pub fn observe_transfer(&mut self, addr: Addr) -> bool {
        match self.health {
            RouterHealth::PassThrough => return false,
            RouterHealth::Healthy | RouterHealth::Degraded => {}
        }
        match self.fsm.observe_transfer(addr) {
            Observe::Installed => {
                self.stats.barriers_installed += 1;
                true
            }
            Observe::AlreadyPresent => false,
            Observe::TableFull => {
                self.stats.passes_table_full += 1;
                self.note_pressure();
                false
            }
        }
    }

    /// Whether a `GetX` for `addr` arriving now would be stopped: a
    /// barrier exists and the EI pool has space.
    pub fn should_stop(&self, addr: Addr) -> bool {
        match self.health {
            RouterHealth::PassThrough => false,
            RouterHealth::Healthy | RouterHealth::Degraded => self.fsm.should_stop(addr),
        }
    }

    /// Whether a barrier for `addr` currently exists (regardless of EI
    /// pool occupancy).
    pub fn has_barrier(&self, addr: Addr) -> bool {
        self.fsm.has_barrier(addr)
    }

    /// Stops a `GetX` from `core`: creates an EI entry in the
    /// `AwaitingAck` phase and resets the barrier's TTL.
    ///
    /// # Panics
    ///
    /// Panics if [`should_stop`](Self::should_stop) would return `false`;
    /// callers must check first.
    pub fn stop(&mut self, addr: Addr, core: CoreId) {
        assert!(self.fsm.stop(addr, core), "stop without a barrier or EI pool space");
        self.stats.requests_stopped += 1;
    }

    /// Records that the table or pool was full and a request passed.
    pub fn note_pass_full(&mut self) {
        self.stats.passes_table_full += 1;
        self.note_pressure();
    }

    /// Consumes the early acknowledgement from `core` for `addr`.
    /// Returns `true` when a matching EI entry existed (the caller relays
    /// the ack to the home node); `false` for a stale ack.
    pub fn take_ack(&mut self, addr: Addr, core: CoreId) -> bool {
        match self.fsm.take_ack(addr, core) {
            TakeAck::Relayed => {
                self.stats.acks_relayed += 1;
                true
            }
            TakeAck::Stale => {
                self.stats.stale_acks_dropped += 1;
                false
            }
        }
    }

    /// Advances one cycle: barriers with no live EI entries count down and
    /// expire at zero; a Degraded table heals once fully drained.
    pub fn tick(&mut self) {
        self.stats.barriers_expired += self.fsm.tick();
        match self.health {
            RouterHealth::Degraded => {
                if self.fsm.barrier_count() == 0 && self.fsm.ei_count() == 0 {
                    self.health = RouterHealth::Healthy;
                }
            }
            RouterHealth::Healthy | RouterHealth::PassThrough => {}
        }
    }

    /// Live barrier count.
    pub fn barrier_count(&self) -> usize {
        self.fsm.barrier_count()
    }

    /// Live EI entries across all barriers.
    pub fn ei_count(&self) -> usize {
        self.fsm.ei_count()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> BarrierStats {
        self.stats
    }

    /// The TTL barriers are installed (and refreshed) with.
    pub fn default_ttl(&self) -> u32 {
        self.fsm.default_ttl()
    }

    /// Snapshot of the live barriers: `(lock block, ttl, live EI entries)`
    /// per entry. Used by invariant checks and stall reports.
    pub fn snapshot(&self) -> BarrierSnapshot {
        self.fsm.snapshot()
    }

    /// Discards every barrier and EI entry (fault injection: the table
    /// loses its state mid-run). Outstanding early-inv acks arriving later
    /// are treated as stale — and still relayed to the home node, which
    /// deduplicates them, so the protocol degrades instead of wedging.
    pub fn flush(&mut self) {
        self.fsm.flush();
    }

    /// Forces every live barrier's TTL to `ttl` cycles (fault injection:
    /// a TTL-expiry storm). Barriers with live EI entries still wait for
    /// their acks before counting down.
    pub fn set_all_ttls(&mut self, ttl: u32) {
        self.fsm.set_all_ttls(ttl);
    }

    /// Clamps the shared EI pool to at most `capacity` entries (fault
    /// injection: pool exhaustion). With a full pool every competing
    /// request passes through to the home node as in a normal router.
    pub fn clamp_ei_capacity(&mut self, capacity: usize) {
        self.fsm.clamp_ei_capacity(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LockingBarrierTable {
        LockingBarrierTable::new(4, 4, 8)
    }

    #[test]
    fn first_transfer_installs_barrier() {
        let mut t = table();
        assert!(t.observe_transfer(Addr::new(0x100)));
        assert!(!t.observe_transfer(Addr::new(0x100)), "no duplicate barrier");
        assert_eq!(t.barrier_count(), 1);
        assert!(t.has_barrier(Addr::new(0x100)));
    }

    #[test]
    fn barrier_keys_on_block_address() {
        let mut t = table();
        t.observe_transfer(Addr::new(0x100));
        // Same 128-byte block, different word.
        assert!(t.should_stop(Addr::new(0x108)));
    }

    #[test]
    fn stop_requires_barrier() {
        let mut t = table();
        assert!(!t.should_stop(Addr::new(0x100)));
        t.observe_transfer(Addr::new(0x100));
        assert!(t.should_stop(Addr::new(0x100)));
        t.stop(Addr::new(0x100), CoreId::new(3));
        assert_eq!(t.ei_count(), 1);
    }

    #[test]
    fn table_capacity_limits_barriers() {
        let mut t = table();
        for i in 0..4 {
            assert!(t.observe_transfer(Addr::new(i * 128)));
        }
        assert!(!t.observe_transfer(Addr::new(4 * 128)), "table full");
        assert_eq!(t.barrier_count(), 4);
        assert_eq!(t.stats().passes_table_full, 1);
    }

    #[test]
    fn ei_pool_limits_stops() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        for core in 0..4 {
            assert!(t.should_stop(Addr::new(0)));
            t.stop(Addr::new(0), CoreId::new(core));
        }
        assert!(!t.should_stop(Addr::new(0)), "EI pool exhausted");
    }

    #[test]
    fn ack_completes_and_frees_entry() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.stop(Addr::new(0), CoreId::new(7));
        assert!(t.take_ack(Addr::new(0), CoreId::new(7)));
        assert_eq!(t.ei_count(), 0);
        assert_eq!(t.stats().acks_relayed, 1);
    }

    #[test]
    fn stale_ack_is_dropped() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        assert!(!t.take_ack(Addr::new(0), CoreId::new(9)));
        assert!(!t.take_ack(Addr::new(0x5000), CoreId::new(9)));
        assert_eq!(t.stats().stale_acks_dropped, 2);
    }

    #[test]
    fn ttl_counts_down_only_without_eis() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.stop(Addr::new(0), CoreId::new(1));
        for _ in 0..20 {
            t.tick();
        }
        assert_eq!(t.barrier_count(), 1, "live EI entry pins the barrier");
        assert!(t.take_ack(Addr::new(0), CoreId::new(1)));
        for _ in 0..7 {
            t.tick();
        }
        assert_eq!(t.barrier_count(), 1, "TTL of 8 not yet expired");
        t.tick();
        assert_eq!(t.barrier_count(), 0, "TTL expired");
        assert_eq!(t.stats().barriers_expired, 1);
    }

    #[test]
    fn stop_resets_ttl() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        for _ in 0..7 {
            t.tick();
        }
        t.stop(Addr::new(0), CoreId::new(1));
        assert!(t.take_ack(Addr::new(0), CoreId::new(1)));
        for _ in 0..7 {
            t.tick();
        }
        assert_eq!(t.barrier_count(), 1, "TTL was reset by the stop");
    }

    #[test]
    fn expired_barrier_can_be_reinstalled() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        for _ in 0..8 {
            t.tick();
        }
        assert_eq!(t.barrier_count(), 0);
        assert!(t.observe_transfer(Addr::new(0)));
    }

    #[test]
    fn flush_drops_barriers_and_frees_the_pool() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.stop(Addr::new(0), CoreId::new(1));
        t.flush();
        assert_eq!(t.barrier_count(), 0);
        assert_eq!(t.ei_count(), 0);
        // The in-flight ack now looks stale but is still accounted.
        assert!(!t.take_ack(Addr::new(0), CoreId::new(1)));
        assert_eq!(t.stats().stale_acks_dropped, 1);
    }

    #[test]
    fn ttl_storm_expires_idle_barriers_next_tick() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.observe_transfer(Addr::new(0x100));
        t.stop(Addr::new(0), CoreId::new(1));
        t.set_all_ttls(1);
        t.tick();
        assert_eq!(t.barrier_count(), 1, "barrier with a live EI survives");
        assert!(t.take_ack(Addr::new(0), CoreId::new(1)));
        t.tick();
        assert_eq!(t.barrier_count(), 0, "drained barrier expires at once");
        assert_eq!(t.stats().barriers_expired, 2);
    }

    #[test]
    fn clamped_pool_passes_requests_through() {
        let mut t = table();
        t.clamp_ei_capacity(0);
        t.observe_transfer(Addr::new(0));
        assert!(t.has_barrier(Addr::new(0)));
        assert!(!t.should_stop(Addr::new(0)), "no pool space: pass through");
    }

    #[test]
    fn snapshot_reports_live_entries() {
        let mut t = table();
        t.observe_transfer(Addr::new(0x100));
        t.stop(Addr::new(0x100), CoreId::new(2));
        let snap = t.snapshot();
        assert_eq!(snap, vec![(Addr::new(0x100), 8, 1)]);
        assert_eq!(t.default_ttl(), 8);
    }

    #[test]
    fn duplicate_core_entries_allowed_across_rounds() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.stop(Addr::new(0), CoreId::new(2));
        t.stop(Addr::new(0), CoreId::new(2));
        assert_eq!(t.ei_count(), 2);
        assert!(t.take_ack(Addr::new(0), CoreId::new(2)));
        assert!(t.take_ack(Addr::new(0), CoreId::new(2)));
        assert!(!t.take_ack(Addr::new(0), CoreId::new(2)));
    }

    #[test]
    fn pressure_degrades_and_drain_heals() {
        let mut t = table();
        for i in 0..4 {
            t.observe_transfer(Addr::new(i * 128));
        }
        assert_eq!(t.health(), RouterHealth::Healthy);
        t.observe_transfer(Addr::new(4 * 128));
        assert_eq!(t.health(), RouterHealth::Degraded, "table-full pressure degrades");
        assert_eq!(t.stats().degraded_transitions, 1);
        for _ in 0..8 {
            t.tick();
        }
        assert_eq!(t.barrier_count(), 0);
        assert_eq!(t.health(), RouterHealth::Healthy, "drained table heals");
    }

    #[test]
    fn failed_router_passes_everything_through() {
        let mut t = table();
        t.observe_transfer(Addr::new(0));
        t.stop(Addr::new(0), CoreId::new(1));
        t.fail();
        assert_eq!(t.health(), RouterHealth::PassThrough);
        assert_eq!(t.barrier_count(), 0);
        assert_eq!(t.ei_count(), 0);
        assert_eq!(t.stats().in_pass_through, 1);
        assert!(!t.observe_transfer(Addr::new(0x200)), "no new barriers after failure");
        assert!(!t.should_stop(Addr::new(0)));
        assert!(!t.take_ack(Addr::new(0), CoreId::new(1)), "in-flight ack drains as stale");
        for _ in 0..100 {
            t.tick();
        }
        assert_eq!(t.health(), RouterHealth::PassThrough, "failure is permanent");
    }

    #[test]
    fn force_expire_skips_barriers_with_live_eis() {
        let mut fsm = BarrierFsm::new(4, 4, 8);
        assert_eq!(fsm.observe_transfer(Addr::new(0)), Observe::Installed);
        assert!(fsm.stop(Addr::new(0), CoreId::new(1)));
        assert!(!fsm.force_expire(Addr::new(0)), "live EI pins the barrier");
        assert_eq!(fsm.take_ack(Addr::new(0), CoreId::new(1)), TakeAck::Relayed);
        assert!(fsm.force_expire(Addr::new(0)));
        assert!(!fsm.has_barrier(Addr::new(0)));
    }
}
