//! Functional verification of the lock protocols against a sequentially
//! consistent toy memory with randomized interleavings: mutual
//! exclusion, progress, and fairness properties hold for every
//! primitive, independent of the cycle-accurate coherence model.

use inpg_locks::{LockHandle, LockLayout, LockPrimitive, LockStep};
use inpg_sim::{Addr, SimRng};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Acquiring,
    InCs { turns_left: u32 },
    Releasing,
    Done,
}

struct Harness {
    memory: HashMap<Addr, u64>,
    handles: Vec<LockHandle>,
    phases: Vec<Phase>,
    sleeping: Vec<bool>,
    /// MWAIT-style monitoring: a sleeping thread wakes when its
    /// monitored lock word is written (the release invalidates it).
    monitored: Vec<Option<Addr>>,
    /// Futex-style pending-wakeup tokens: a Notify that arrives before
    /// the target actually sleeps must not be lost.
    wake_pending: Vec<bool>,
    acquisitions: Vec<u32>,
    rounds: u32,
    in_cs: usize,
    cs_entries: u64,
}

impl Harness {
    fn new(primitive: LockPrimitive, threads: usize, rounds: u32) -> Self {
        let words = LockLayout::words_needed(primitive, threads);
        let layout = LockLayout::new(
            primitive,
            threads,
            (0..words).map(|i| Addr::new(i as u64 * 128)).collect(),
        );
        let mut memory = HashMap::new();
        for (addr, value) in layout.initial_values() {
            memory.insert(addr, value);
        }
        let mut handles: Vec<LockHandle> = (0..threads)
            .map(|t| LockHandle::with_retry_budget(layout.clone(), t, 4))
            .collect();
        for h in &mut handles {
            h.begin_acquire();
        }
        Harness {
            memory,
            handles,
            phases: vec![Phase::Acquiring; threads],
            sleeping: vec![false; threads],
            monitored: vec![None; threads],
            wake_pending: vec![false; threads],
            acquisitions: vec![0; threads],
            rounds,
            in_cs: 0,
            cs_entries: 0,
        }
    }

    /// Advances thread `t` by one protocol step. Returns false when the
    /// thread cannot advance (sleeping or finished).
    fn advance(&mut self, t: usize) -> bool {
        if self.sleeping[t] || self.phases[t] == Phase::Done {
            return false;
        }
        if let Phase::InCs { turns_left } = self.phases[t] {
            if turns_left > 0 {
                self.phases[t] = Phase::InCs { turns_left: turns_left - 1 };
                return true;
            }
            self.in_cs -= 1;
            self.phases[t] = Phase::Releasing;
            self.handles[t].begin_release();
        }
        match self.handles[t].step() {
            LockStep::Issue(op) => {
                let slot = self.memory.entry(op.addr).or_insert(0);
                let old = *slot;
                *slot = op.kind.apply(old);
                self.handles[t].on_result(old);
                if op.kind.is_write() {
                    // MWAIT semantics: the write invalidates cached
                    // copies, waking threads monitoring this word.
                    for s in 0..self.sleeping.len() {
                        if self.sleeping[s] && self.monitored[s] == Some(op.addr) {
                            self.sleeping[s] = false;
                            self.monitored[s] = None;
                            self.handles[s].on_wakeup();
                        }
                    }
                }
            }
            LockStep::Pause(_) => {}
            LockStep::Sleep => {
                let monitored = self.handles[t].primary_addr();
                let released = self.memory.get(&monitored).copied().unwrap_or(0) == 0;
                if self.wake_pending[t] || released {
                    // A wakeup (or the release itself) raced ahead of the
                    // sleep: consume it and resume spinning instead of
                    // sleeping forever. This models the atomic
                    // register-then-final-check of futex/MWAIT.
                    self.wake_pending[t] = false;
                    self.handles[t].on_wakeup();
                } else {
                    self.sleeping[t] = true;
                    self.monitored[t] = Some(monitored);
                }
            }
            LockStep::Notify { thread } => {
                if self.sleeping[thread] {
                    self.sleeping[thread] = false;
                    self.monitored[thread] = None;
                    self.handles[thread].on_wakeup();
                } else {
                    self.wake_pending[thread] = true;
                }
            }
            LockStep::Acquired => {
                self.wake_pending[t] = false;
                self.in_cs += 1;
                self.cs_entries += 1;
                assert_eq!(self.in_cs, 1, "mutual exclusion violated");
                self.acquisitions[t] += 1;
                self.phases[t] = Phase::InCs { turns_left: 2 };
            }
            LockStep::Released => {
                if self.acquisitions[t] >= self.rounds {
                    self.phases[t] = Phase::Done;
                } else {
                    self.phases[t] = Phase::Acquiring;
                    self.handles[t].begin_acquire();
                }
            }
        }
        true
    }

    fn all_done(&self) -> bool {
        self.phases.iter().all(|p| *p == Phase::Done)
    }
}

/// Runs `threads` threads through `rounds` acquisitions each under a
/// random scheduler; asserts mutual exclusion and progress.
fn run(primitive: LockPrimitive, threads: usize, rounds: u32, seed: u64) {
    let mut harness = Harness::new(primitive, threads, rounds);
    let mut rng = SimRng::seed_from_u64(seed);
    let step_budget = 2_000_000u64;
    for step in 0..step_budget {
        if harness.all_done() {
            assert_eq!(
                harness.cs_entries,
                threads as u64 * rounds as u64,
                "every acquisition entered the critical section exactly once"
            );
            for t in 0..threads {
                assert_eq!(harness.acquisitions[t], rounds, "thread {t} starved");
            }
            return;
        }
        let t = rng.next_below(threads as u64) as usize;
        let _ = harness.advance(t);
        let _ = step;
    }
    panic!("{primitive} did not finish: deadlock or livelock under seed {seed}");
}

#[test]
fn all_primitives_two_threads() {
    for primitive in LockPrimitive::ALL {
        run(primitive, 2, 5, 42);
    }
}

#[test]
fn all_primitives_eight_threads() {
    for primitive in LockPrimitive::ALL {
        run(primitive, 8, 3, 7);
    }
}

#[test]
fn qsl_with_tiny_budget_sleeps_and_recovers() {
    // Budget of 4 in the harness forces frequent sleeps; the notify path
    // must always wake sleepers.
    run(LockPrimitive::Qsl, 6, 4, 123);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mutual_exclusion_under_random_schedules(
        seed in any::<u64>(),
        threads in 2usize..7,
        primitive_idx in 0usize..5,
    ) {
        run(LockPrimitive::ALL[primitive_idx], threads, 3, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed ABQL slot arithmetic never corrupts neighbouring
    /// lanes: after any interleaving, the final block value has exactly
    /// one open lane (the next baton position).
    #[test]
    fn abql_packed_lanes_stay_isolated(seed in any::<u64>(), threads in 2usize..9) {
        run(LockPrimitive::Abql, threads, 3, seed);
    }

    /// The packed ticket word's two halves never interfere: every
    /// acquisition gets a unique ticket and the counters end equal.
    #[test]
    fn ticket_packed_halves_stay_isolated(seed in any::<u64>(), threads in 2usize..9) {
        run(LockPrimitive::Ticket, threads, 4, seed);
    }
}

/// End-state checks for the packed layouts: exercised through the
/// scheduler-randomized harness above, verified concretely here.
#[test]
fn packed_end_states_are_exact() {
    let threads = 6;
    let rounds = 5;
    // ABQL: tail counts acquisitions; exactly one slot lane open.
    let mut h = Harness::new(LockPrimitive::Abql, threads, rounds);
    let mut rng = SimRng::seed_from_u64(77);
    for _ in 0..2_000_000u64 {
        if h.all_done() {
            break;
        }
        let t = rng.next_below(threads as u64) as usize;
        let _ = h.advance(t);
    }
    assert!(h.all_done());
    let total = threads as u64 * u64::from(rounds);
    let tail = h.memory[&Addr::new(0)];
    assert_eq!(tail, total);
    let open_lanes: u32 = h
        .memory
        .iter()
        .filter(|(a, _)| a.as_u64() >= 128)
        .map(|(_, v)| v.count_ones())
        .sum();
    assert_eq!(open_lanes, 1, "exactly one baton slot open");

    // Ticket: both packed halves equal the acquisition count.
    let mut h = Harness::new(LockPrimitive::Ticket, threads, rounds);
    let mut rng = SimRng::seed_from_u64(78);
    for _ in 0..2_000_000u64 {
        if h.all_done() {
            break;
        }
        let t = rng.next_below(threads as u64) as usize;
        let _ = h.advance(t);
    }
    assert!(h.all_done());
    let word = h.memory[&Addr::new(0)];
    assert_eq!(word >> 32, total);
    assert_eq!(word & 0xFFFF_FFFF, total);
}
