//! Memory layout of lock data structures.
//!
//! Every word a lock protocol touches lives in its own 128-byte cache
//! block (the standard padding that avoids false sharing), so the system
//! layer allocates `words_needed` distinct block-aligned addresses per
//! lock and wraps them in a [`LockLayout`].

use crate::LockPrimitive;
use inpg_sim::Addr;

/// Byte-wide ABQL slots packed per cache block (the unpadded classic
/// array layout; the resulting false sharing is part of what iNPG's
/// evaluation exercises).
pub const ABQL_SLOTS_PER_BLOCK: usize = 8;

/// The block-aligned words backing one lock instance.
///
/// Word meaning depends on the primitive:
///
/// | primitive | words |
/// |---|---|
/// | TAS / QSL | `[flag]` |
/// | Ticket | `[packed]` — next_ticket in the high 32 bits, now_serving in the low 32; both counters share one cache block, as in the classic (and Linux) ticket lock |
/// | ABQL | `[tail, slots_0, slots_1, …]` — 8 byte-wide slots per block (the classic array layout without padding) |
/// | MCS | `[tail, flag_0, next_0, … flag_{N-1}, next_{N-1}]` — per-thread nodes padded to their own blocks, MCS's design point |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockLayout {
    primitive: LockPrimitive,
    threads: usize,
    words: Vec<Addr>,
}

impl LockLayout {
    /// Number of block-aligned words `primitive` needs for `threads`
    /// competing threads.
    pub fn words_needed(primitive: LockPrimitive, threads: usize) -> usize {
        match primitive {
            LockPrimitive::Tas | LockPrimitive::Qsl => 1,
            LockPrimitive::Ticket => 1,
            LockPrimitive::Abql => 1 + threads.div_ceil(ABQL_SLOTS_PER_BLOCK),
            LockPrimitive::Mcs => 1 + 2 * threads,
        }
    }

    /// Wraps allocated word addresses.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match
    /// [`words_needed`](Self::words_needed) or any word is not
    /// block-aligned.
    pub fn new(primitive: LockPrimitive, threads: usize, words: Vec<Addr>) -> Self {
        assert_eq!(
            words.len(),
            Self::words_needed(primitive, threads),
            "wrong number of words for {primitive}"
        );
        assert!(words.iter().all(|w| w.is_block_aligned()), "lock words must be block-aligned");
        LockLayout { primitive, threads, words }
    }

    /// The primitive this layout serves.
    pub fn primitive(&self) -> LockPrimitive {
        self.primitive
    }

    /// Number of competing threads the layout was sized for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The primary (most contended) word: TAS flag, ticket dispenser,
    /// ABQL/MCS tail. This is the word experiments home at a chosen tile.
    pub fn primary(&self) -> Addr {
        self.words[0]
    }

    /// All words, in layout order.
    pub fn words(&self) -> &[Addr] {
        &self.words
    }

    /// `(address, initial value)` pairs the system must install before
    /// the workload starts.
    pub fn initial_values(&self) -> Vec<(Addr, u64)> {
        let mut init: Vec<(Addr, u64)> = self.words.iter().map(|&w| (w, 0)).collect();
        if self.primitive == LockPrimitive::Abql {
            // Slot 0 (byte lane 0 of the first slot block) starts
            // "open" so the first arrival proceeds.
            init[1].1 = 1;
        }
        init
    }

    // -- accessors per primitive ------------------------------------------

    /// TAS/QSL: the lock word all threads spin on and CAS.
    pub fn tas_flag(&self) -> Addr {
        debug_assert!(matches!(self.primitive, LockPrimitive::Tas | LockPrimitive::Qsl));
        self.words[0]
    }

    /// Ticket: the packed counter word (next_ticket high 32 bits,
    /// now_serving low 32 bits).
    pub fn ticket_word(&self) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Ticket);
        self.words[0]
    }

    /// ABQL: the tail counter.
    pub fn abql_tail(&self) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Abql);
        self.words[0]
    }

    /// ABQL: the block holding slot `i` (8 byte-wide slots per block).
    pub fn abql_slot_block(&self, i: usize) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Abql);
        self.words[1 + (i % self.threads) / ABQL_SLOTS_PER_BLOCK]
    }

    /// ABQL: the byte lane of slot `i` within its block.
    pub fn abql_slot_lane(&self, i: usize) -> u32 {
        ((i % self.threads) % ABQL_SLOTS_PER_BLOCK) as u32
    }

    /// MCS: the tail pointer word.
    pub fn mcs_tail(&self) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Mcs);
        self.words[0]
    }

    /// MCS: thread `t`'s spin flag word.
    pub fn mcs_flag(&self, t: usize) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Mcs);
        self.words[1 + 2 * t]
    }

    /// MCS: thread `t`'s next pointer word.
    pub fn mcs_next(&self, t: usize) -> Addr {
        debug_assert_eq!(self.primitive, LockPrimitive::Mcs);
        self.words[2 + 2 * t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<Addr> {
        (0..n).map(|i| Addr::new(i as u64 * 128)).collect()
    }

    #[test]
    fn words_needed_per_primitive() {
        assert_eq!(LockLayout::words_needed(LockPrimitive::Tas, 8), 1);
        assert_eq!(LockLayout::words_needed(LockPrimitive::Ticket, 8), 1);
        assert_eq!(LockLayout::words_needed(LockPrimitive::Abql, 8), 2);
        assert_eq!(LockLayout::words_needed(LockPrimitive::Abql, 64), 9);
        assert_eq!(LockLayout::words_needed(LockPrimitive::Mcs, 8), 17);
        assert_eq!(LockLayout::words_needed(LockPrimitive::Qsl, 8), 1);
    }

    #[test]
    fn accessors_map_correctly() {
        let layout = LockLayout::new(LockPrimitive::Mcs, 4, words(9));
        assert_eq!(layout.mcs_tail(), Addr::new(0));
        assert_eq!(layout.mcs_flag(0), Addr::new(128));
        assert_eq!(layout.mcs_next(0), Addr::new(256));
        assert_eq!(layout.mcs_flag(3), Addr::new(7 * 128));
        assert_eq!(layout.mcs_next(3), Addr::new(8 * 128));
        assert_eq!(layout.primary(), Addr::new(0));
    }

    #[test]
    fn abql_initial_opens_slot_zero() {
        let layout = LockLayout::new(LockPrimitive::Abql, 3, words(2));
        let init = layout.initial_values();
        assert_eq!(init.len(), 2);
        assert_eq!(init[0], (Addr::new(0), 0), "tail starts at 0");
        assert_eq!(init[1], (Addr::new(128), 1), "slot 0 (lane 0) open");
        assert_eq!(
            layout.abql_slot_block(5),
            layout.abql_slot_block(2),
            "slots wrap modulo threads"
        );
    }

    #[test]
    fn abql_slots_pack_eight_per_block() {
        let layout = LockLayout::new(LockPrimitive::Abql, 16, words(3));
        assert_eq!(layout.abql_slot_block(0), layout.abql_slot_block(7));
        assert_ne!(layout.abql_slot_block(7), layout.abql_slot_block(8));
        assert_eq!(layout.abql_slot_lane(0), 0);
        assert_eq!(layout.abql_slot_lane(7), 7);
        assert_eq!(layout.abql_slot_lane(8), 0);
    }

    #[test]
    #[should_panic(expected = "wrong number of words")]
    fn wrong_word_count_panics() {
        LockLayout::new(LockPrimitive::Tas, 4, words(2));
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_word_panics() {
        LockLayout::new(LockPrimitive::Tas, 4, vec![Addr::new(4)]);
    }
}
