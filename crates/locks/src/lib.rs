//! Lock primitives for the iNPG reproduction, modelled as per-thread
//! state machines over atomic memory operations.
//!
//! The paper evaluates five locking primitives (§2.1): test-and-set
//! (TAS), the ticket lock (TTL), the array-based queuing lock (ABQL),
//! the Mellor-Crummey & Scott lock (MCS), and the Linux 4.2 queue
//! spin-lock (QSL, an MCS-style spin phase with a sleep phase after 128
//! failed retries). Each primitive is a state machine that the core
//! model drives: [`LockHandle::step`] yields the next [`LockStep`]
//! (issue a memory operation, pause, sleep, or done), and the driver
//! feeds results back with [`LockHandle::on_result`].
//!
//! The memory operations flow through the simulated L1/directory
//! protocol, so lock behaviour (GetX races, invalidation storms,
//! cache-line bouncing) emerges from the coherence model exactly as in
//! the paper's Figure 4.
//!
//! # Example
//!
//! ```
//! use inpg_locks::{LockHandle, LockLayout, LockPrimitive, LockStep};
//! use inpg_sim::Addr;
//!
//! let layout = LockLayout::new(LockPrimitive::Tas, 2, vec![Addr::new(0)]);
//! let mut lock = LockHandle::new(layout, 0);
//! lock.begin_acquire();
//! // First step: spin-load the flag.
//! let LockStep::Issue(op) = lock.step() else { panic!() };
//! assert!(!op.kind.is_write());
//! lock.on_result(0); // flag free
//! // Second step: the atomic SWAP.
//! let LockStep::Issue(op) = lock.step() else { panic!() };
//! assert!(op.kind.is_write() && op.lock);
//! lock.on_result(0); // swap saw 0: we won
//! assert_eq!(lock.step(), LockStep::Acquired);
//! ```

pub mod layout;
mod machines;

pub use layout::LockLayout;
pub use machines::{LockHandle, STATE_NAMES};

use inpg_coherence::MemOp;
use std::fmt;
use std::str::FromStr;

/// The five locking primitives of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockPrimitive {
    /// Test-and-set spin lock.
    Tas,
    /// Ticket lock (TTL in the paper).
    Ticket,
    /// Array-based queuing lock.
    Abql,
    /// Mellor-Crummey & Scott queue lock.
    Mcs,
    /// Queue spin-lock: MCS-style spin phase, sleep after 128 retries
    /// (the Linux 4.2 default the paper uses).
    Qsl,
}

impl LockPrimitive {
    /// All primitives, in the paper's presentation order.
    pub const ALL: [LockPrimitive; 5] = [
        LockPrimitive::Tas,
        LockPrimitive::Ticket,
        LockPrimitive::Abql,
        LockPrimitive::Mcs,
        LockPrimitive::Qsl,
    ];

    /// Whether the primitive has a sleep phase (queue spin-lock).
    pub fn has_sleep_phase(self) -> bool {
        self == LockPrimitive::Qsl
    }
}

impl fmt::Display for LockPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LockPrimitive::Tas => "TAS",
            LockPrimitive::Ticket => "TTL",
            LockPrimitive::Abql => "ABQL",
            LockPrimitive::Mcs => "MCS",
            LockPrimitive::Qsl => "QSL",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an unknown primitive name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrimitiveError(String);

impl fmt::Display for ParsePrimitiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown lock primitive `{}`", self.0)
    }
}

impl std::error::Error for ParsePrimitiveError {}

impl FromStr for LockPrimitive {
    type Err = ParsePrimitiveError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tas" => Ok(LockPrimitive::Tas),
            "ttl" | "ticket" => Ok(LockPrimitive::Ticket),
            "abql" => Ok(LockPrimitive::Abql),
            "mcs" => Ok(LockPrimitive::Mcs),
            "qsl" => Ok(LockPrimitive::Qsl),
            other => Err(ParsePrimitiveError(other.to_string())),
        }
    }
}

/// One step of a lock protocol, returned by [`LockHandle::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStep {
    /// Perform this memory operation, then report its value via
    /// [`LockHandle::on_result`] and call `step` again.
    Issue(MemOp),
    /// Busy-wait locally for this many cycles, then call `step` again
    /// (the instruction overhead of a spin iteration).
    Pause(u64),
    /// QSL only: the retry budget is exhausted; deschedule the thread
    /// until the OS wakes it, then call
    /// [`LockHandle::on_wakeup`] and `step` again.
    Sleep,
    /// QSL only: the releaser must wake thread `thread` if it sleeps on
    /// this lock; no completion — call `step` again immediately.
    Notify {
        /// Thread index of the successor to wake.
        thread: usize,
    },
    /// The lock is held; proceed to the critical section.
    Acquired,
    /// The release protocol finished.
    Released,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_display_and_parse_roundtrip() {
        for p in LockPrimitive::ALL {
            let parsed: LockPrimitive = p.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, p);
        }
        assert_eq!("ticket".parse::<LockPrimitive>().unwrap(), LockPrimitive::Ticket);
        assert!("futex".parse::<LockPrimitive>().is_err());
        assert_eq!(
            "futex".parse::<LockPrimitive>().unwrap_err().to_string(),
            "unknown lock primitive `futex`"
        );
    }

    #[test]
    fn only_qsl_sleeps() {
        for p in LockPrimitive::ALL {
            assert_eq!(p.has_sleep_phase(), p == LockPrimitive::Qsl);
        }
    }
}
