//! The per-thread lock protocol state machines.
//!
//! A [`LockHandle`] is one thread's view of one lock instance. The
//! driver protocol is:
//!
//! 1. call [`begin_acquire`](LockHandle::begin_acquire) (or
//!    [`begin_release`](LockHandle::begin_release));
//! 2. call [`step`](LockHandle::step); obey the returned [`LockStep`];
//! 3. after an issued operation completes, call
//!    [`on_result`](LockHandle::on_result); after a pause elapses or a
//!    [`LockStep::Notify`] is handled, just call `step` again; after a
//!    wakeup, call [`on_wakeup`](LockHandle::on_wakeup);
//! 4. repeat from 2 until `Acquired` / `Released`.

use crate::{LockLayout, LockPrimitive, LockStep};
use inpg_coherence::{MemOp, MemOpKind};
use inpg_sim::{coverage, Addr};

/// Cycles of loop overhead between consecutive spin polls.
const SPIN_PAUSE: u64 = 1;

/// QSL spin-poll interval: the Linux-style retry loop does real work per
/// iteration (cpu_relax, re-reads, mixed-size atomics), so one retry is
/// a couple of dozen cycles; the 128-retry budget then covers a few
/// thousand cycles of spinning before the thread yields, as in the
/// paper's OS model.
const QSL_SPIN_PAUSE: u64 = 24;

/// Default QSL retry budget (Table 1: 128 retry times in the spinning
/// phase).
pub const DEFAULT_RETRY_BUDGET: u32 = 128;

/// One thread's handle on one lock.
#[derive(Debug, Clone)]
pub struct LockHandle {
    layout: LockLayout,
    me: usize,
    retry_budget: u32,
    state: State,
    /// ABQL slot / ticket number memorised between acquire and release.
    token: u64,
    /// QSL: remaining retries in the current spin phase.
    retries_left: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Held,
    // -- TAS --
    TasSpin,
    TasSpinWait,
    TasPause,
    TasSwap,
    TasSwapWait,
    TasRelease,
    TasReleaseWait,
    // -- Ticket --
    TicketTake,
    TicketTakeWait,
    TicketCheck,
    TicketCheckWait,
    TicketPause,
    TicketRelease,
    TicketReleaseWait,
    // -- ABQL --
    AbqlTake,
    AbqlTakeWait,
    AbqlCheck,
    AbqlCheckWait,
    AbqlPause,
    AbqlReset,
    AbqlResetWait,
    AbqlRelease,
    AbqlReleaseWait,
    // -- MCS / QSL --
    McsClearNext,
    McsClearNextWait,
    McsClearFlag,
    McsClearFlagWait,
    McsSwapTail,
    McsSwapTailWait,
    McsLinkPred { prev: usize },
    McsLinkPredWait,
    McsSpin,
    McsSpinWait,
    McsPause,
    McsCasTail,
    McsCasTailWait,
    McsLoadNext,
    McsLoadNextWait,
    McsNextPause,
    McsSetSucc { succ: usize },
    McsSetSuccWait { succ: usize },
    McsNotify { succ: usize },
    // -- QSL (queue spin-lock: bounded CAS-retry spin + sleep) --
    QslSpin,
    QslSpinWait,
    QslPause,
    QslCas,
    QslCasWait,
    QslFinalCheck,
    QslFinalCheckWait,
    QslGoSleep,
    QslSleeping,
    QslRelease,
    QslReleaseWait,
    JustAcquired,
    JustReleased,
}

/// State names in declaration order. The static transition-matrix
/// analyzer (`cargo xtask analyze`) parses the `State` declaration above
/// and cross-checks its variant list against this constant, so a variant
/// added to one but not the other fails the analyze pass. The enum
/// itself stays private; only the names are exported.
pub const STATE_NAMES: [&str; 57] = [
    "Idle",
    "Held",
    "TasSpin",
    "TasSpinWait",
    "TasPause",
    "TasSwap",
    "TasSwapWait",
    "TasRelease",
    "TasReleaseWait",
    "TicketTake",
    "TicketTakeWait",
    "TicketCheck",
    "TicketCheckWait",
    "TicketPause",
    "TicketRelease",
    "TicketReleaseWait",
    "AbqlTake",
    "AbqlTakeWait",
    "AbqlCheck",
    "AbqlCheckWait",
    "AbqlPause",
    "AbqlReset",
    "AbqlResetWait",
    "AbqlRelease",
    "AbqlReleaseWait",
    "McsClearNext",
    "McsClearNextWait",
    "McsClearFlag",
    "McsClearFlagWait",
    "McsSwapTail",
    "McsSwapTailWait",
    "McsLinkPred",
    "McsLinkPredWait",
    "McsSpin",
    "McsSpinWait",
    "McsPause",
    "McsCasTail",
    "McsCasTailWait",
    "McsLoadNext",
    "McsLoadNextWait",
    "McsNextPause",
    "McsSetSucc",
    "McsSetSuccWait",
    "McsNotify",
    "QslSpin",
    "QslSpinWait",
    "QslPause",
    "QslCas",
    "QslCasWait",
    "QslFinalCheck",
    "QslFinalCheckWait",
    "QslGoSleep",
    "QslSleeping",
    "QslRelease",
    "QslReleaseWait",
    "JustAcquired",
    "JustReleased",
];

/// The state's position in the `State` declaration (the per-site
/// transition-coverage index; see [`inpg_sim::coverage`]).
fn state_index(s: State) -> usize {
    match s {
        State::Idle => 0,
        State::Held => 1,
        State::TasSpin => 2,
        State::TasSpinWait => 3,
        State::TasPause => 4,
        State::TasSwap => 5,
        State::TasSwapWait => 6,
        State::TasRelease => 7,
        State::TasReleaseWait => 8,
        State::TicketTake => 9,
        State::TicketTakeWait => 10,
        State::TicketCheck => 11,
        State::TicketCheckWait => 12,
        State::TicketPause => 13,
        State::TicketRelease => 14,
        State::TicketReleaseWait => 15,
        State::AbqlTake => 16,
        State::AbqlTakeWait => 17,
        State::AbqlCheck => 18,
        State::AbqlCheckWait => 19,
        State::AbqlPause => 20,
        State::AbqlReset => 21,
        State::AbqlResetWait => 22,
        State::AbqlRelease => 23,
        State::AbqlReleaseWait => 24,
        State::McsClearNext => 25,
        State::McsClearNextWait => 26,
        State::McsClearFlag => 27,
        State::McsClearFlagWait => 28,
        State::McsSwapTail => 29,
        State::McsSwapTailWait => 30,
        State::McsLinkPred { .. } => 31,
        State::McsLinkPredWait => 32,
        State::McsSpin => 33,
        State::McsSpinWait => 34,
        State::McsPause => 35,
        State::McsCasTail => 36,
        State::McsCasTailWait => 37,
        State::McsLoadNext => 38,
        State::McsLoadNextWait => 39,
        State::McsNextPause => 40,
        State::McsSetSucc { .. } => 41,
        State::McsSetSuccWait { .. } => 42,
        State::McsNotify { .. } => 43,
        State::QslSpin => 44,
        State::QslSpinWait => 45,
        State::QslPause => 46,
        State::QslCas => 47,
        State::QslCasWait => 48,
        State::QslFinalCheck => 49,
        State::QslFinalCheckWait => 50,
        State::QslGoSleep => 51,
        State::QslSleeping => 52,
        State::QslRelease => 53,
        State::QslReleaseWait => 54,
        State::JustAcquired => 55,
        State::JustReleased => 56,
    }
}

impl LockHandle {
    /// Creates thread `me`'s handle on the lock described by `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the layout's thread count.
    pub fn new(layout: LockLayout, me: usize) -> Self {
        Self::with_retry_budget(layout, me, DEFAULT_RETRY_BUDGET)
    }

    /// Like [`new`](Self::new) with an explicit QSL retry budget.
    pub fn with_retry_budget(layout: LockLayout, me: usize, retry_budget: u32) -> Self {
        assert!(me < layout.threads(), "thread index outside layout");
        assert!(retry_budget > 0, "retry budget must be nonzero");
        LockHandle {
            layout,
            me,
            retry_budget,
            state: State::Idle,
            token: 0,
            retries_left: retry_budget,
        }
    }

    /// The primitive this handle implements.
    pub fn primitive(&self) -> LockPrimitive {
        self.layout.primitive()
    }

    /// The lock's primary (most contended) word.
    pub fn primary_addr(&self) -> Addr {
        self.layout.primary()
    }

    /// QSL: retries left before the thread sleeps; `None` for primitives
    /// without a sleep phase. OCOR derives packet priorities from this.
    pub fn remaining_retries(&self) -> Option<u32> {
        self.primitive().has_sleep_phase().then_some(self.retries_left)
    }

    /// Whether the handle currently holds the lock.
    pub fn is_held(&self) -> bool {
        self.state == State::Held
    }

    /// Starts an acquire attempt.
    ///
    /// # Panics
    ///
    /// Panics unless the handle is idle.
    pub fn begin_acquire(&mut self) {
        assert_eq!(self.state, State::Idle, "begin_acquire on a non-idle handle");
        self.retries_left = self.retry_budget;
        self.state = match self.primitive() {
            LockPrimitive::Tas => State::TasSpin,
            LockPrimitive::Ticket => State::TicketTake,
            LockPrimitive::Abql => State::AbqlTake,
            LockPrimitive::Mcs => State::McsClearNext,
            LockPrimitive::Qsl => State::QslSpin,
        };
    }

    /// Starts the release protocol.
    ///
    /// # Panics
    ///
    /// Panics unless the handle holds the lock.
    pub fn begin_release(&mut self) {
        assert_eq!(self.state, State::Held, "begin_release without holding the lock");
        self.state = match self.primitive() {
            LockPrimitive::Tas => State::TasRelease,
            LockPrimitive::Ticket => State::TicketRelease,
            LockPrimitive::Abql => State::AbqlRelease,
            LockPrimitive::Mcs => State::McsCasTail,
            LockPrimitive::Qsl => State::QslRelease,
        };
    }

    /// Computes the next protocol step. See the module docs for the
    /// driving protocol.
    ///
    /// # Panics
    ///
    /// Panics if called while an issued operation's result is still
    /// outstanding (the driver must call [`on_result`](Self::on_result)
    /// first), or on an idle handle.
    pub fn step(&mut self) -> LockStep {
        coverage::record(coverage::LOCK_STEP.id(state_index(self.state)));
        // Borrow, don't clone: the layout holds a word-address vector and
        // `step` runs once per simulated spin poll.
        let l = &self.layout;
        let me = self.me;
        match self.state {
            State::Idle => panic!("step on an idle lock handle"),
            State::Held => panic!("step while holding the lock; call begin_release"),
            State::JustAcquired => {
                self.state = State::Held;
                LockStep::Acquired
            }
            State::JustReleased => {
                self.state = State::Idle;
                LockStep::Released
            }

            // ---- TAS -------------------------------------------------
            State::TasSpin => {
                self.state = State::TasSpinWait;
                issue_load(l.tas_flag())
            }
            State::TasPause => {
                self.state = State::TasSpin;
                LockStep::Pause(SPIN_PAUSE)
            }
            State::TasSwap => {
                // Conditional acquire: equivalent to SWAP(1) (writing 1
                // over 1 is a no-op) but expressible as a conditional RMW
                // that the home may demote to a failed shared read when
                // the lock is owned (paper Figure 4 step 4).
                self.state = State::TasSwapWait;
                issue(MemOp {
                    addr: l.tas_flag(),
                    kind: MemOpKind::CompareSwap { expected: 0, new: 1 },
                    lock: true,
                })
            }
            State::TasRelease => {
                self.state = State::TasReleaseWait;
                issue(MemOp { addr: l.tas_flag(), kind: MemOpKind::Store(0), lock: false })
            }

            // ---- Ticket ----------------------------------------------
            State::TicketTake => {
                // Both counters share one word (classic layout): the
                // request counter lives in the high 32 bits.
                self.state = State::TicketTakeWait;
                issue(MemOp {
                    addr: l.ticket_word(),
                    kind: MemOpKind::FetchAdd(1 << 32),
                    lock: true,
                })
            }
            State::TicketCheck => {
                self.state = State::TicketCheckWait;
                issue_load(l.ticket_word())
            }
            State::TicketPause => {
                self.state = State::TicketCheck;
                LockStep::Pause(SPIN_PAUSE)
            }
            State::TicketRelease => {
                // Atomically bump now_serving (low half); a plain store
                // would clobber concurrent ticket takers in the high
                // half of the shared word.
                self.state = State::TicketReleaseWait;
                issue(MemOp {
                    addr: l.ticket_word(),
                    kind: MemOpKind::FetchAdd(1),
                    lock: true,
                })
            }

            // ---- ABQL ------------------------------------------------
            State::AbqlTake => {
                self.state = State::AbqlTakeWait;
                issue(MemOp { addr: l.abql_tail(), kind: MemOpKind::FetchAdd(1), lock: true })
            }
            State::AbqlCheck => {
                self.state = State::AbqlCheckWait;
                issue_load(l.abql_slot_block(self.token as usize))
            }
            State::AbqlPause => {
                self.state = State::AbqlCheck;
                LockStep::Pause(SPIN_PAUSE)
            }
            State::AbqlReset => {
                // Close our byte-wide slot without clobbering the other
                // seven slots packed into the same block.
                self.state = State::AbqlResetWait;
                let lane = l.abql_slot_lane(self.token as usize);
                issue(MemOp {
                    addr: l.abql_slot_block(self.token as usize),
                    kind: MemOpKind::FetchAdd((1u64 << (8 * lane)).wrapping_neg()),
                    lock: true,
                })
            }
            State::AbqlRelease => {
                self.state = State::AbqlReleaseWait;
                let next = self.token as usize + 1;
                let lane = l.abql_slot_lane(next);
                issue(MemOp {
                    addr: l.abql_slot_block(next),
                    kind: MemOpKind::FetchAdd(1u64 << (8 * lane)),
                    lock: true,
                })
            }

            // ---- MCS / QSL -------------------------------------------
            State::McsClearNext => {
                self.state = State::McsClearNextWait;
                issue(MemOp { addr: l.mcs_next(me), kind: MemOpKind::Store(0), lock: false })
            }
            State::McsClearFlag => {
                self.state = State::McsClearFlagWait;
                issue(MemOp { addr: l.mcs_flag(me), kind: MemOpKind::Store(0), lock: false })
            }
            State::McsSwapTail => {
                self.state = State::McsSwapTailWait;
                issue(MemOp {
                    addr: l.mcs_tail(),
                    kind: MemOpKind::Swap(me as u64 + 1),
                    lock: true,
                })
            }
            State::McsLinkPred { prev } => {
                self.state = State::McsLinkPredWait;
                issue(MemOp {
                    addr: l.mcs_next(prev),
                    kind: MemOpKind::Store(me as u64 + 1),
                    lock: false,
                })
            }
            State::McsSpin => {
                self.state = State::McsSpinWait;
                issue_load(l.mcs_flag(me))
            }
            State::McsPause => {
                self.state = State::McsSpin;
                LockStep::Pause(SPIN_PAUSE)
            }
            State::McsCasTail => {
                self.state = State::McsCasTailWait;
                issue(MemOp {
                    addr: l.mcs_tail(),
                    kind: MemOpKind::CompareSwap { expected: me as u64 + 1, new: 0 },
                    lock: true,
                })
            }
            State::McsLoadNext => {
                self.state = State::McsLoadNextWait;
                issue_load(l.mcs_next(me))
            }
            State::McsNextPause => {
                self.state = State::McsLoadNext;
                LockStep::Pause(SPIN_PAUSE)
            }
            State::McsSetSucc { succ } => {
                self.state = State::McsSetSuccWait { succ };
                issue(MemOp { addr: l.mcs_flag(succ), kind: MemOpKind::Store(1), lock: false })
            }
            State::McsNotify { succ } => {
                // Plain MCS hands off through the successor's flag; no
                // OS notification is involved.
                let _ = succ;
                self.state = State::JustReleased;
                self.step()
            }

            // ---- QSL ---------------------------------------------------
            State::QslSpin => {
                self.state = State::QslSpinWait;
                issue_load(l.tas_flag())
            }
            State::QslPause => {
                self.state = State::QslSpin;
                LockStep::Pause(QSL_SPIN_PAUSE)
            }
            State::QslCas => {
                self.state = State::QslCasWait;
                issue(MemOp {
                    addr: l.tas_flag(),
                    kind: MemOpKind::CompareSwap { expected: 0, new: 1 },
                    lock: true,
                })
            }
            State::QslFinalCheck => {
                // Futex-style final check after the budget is exhausted:
                // re-read the lock word; only sleep if it is still held
                // (this also guarantees the sleeper holds a registered
                // shared copy, so the release's invalidation reaches it).
                self.state = State::QslFinalCheckWait;
                issue_load(l.tas_flag())
            }
            State::QslGoSleep => {
                self.state = State::QslSleeping;
                LockStep::Sleep
            }
            State::QslRelease => {
                self.state = State::QslReleaseWait;
                issue(MemOp { addr: l.tas_flag(), kind: MemOpKind::Store(0), lock: false })
            }

            // Wait states: an operation's result is outstanding.
            State::TasSpinWait
            | State::TasSwapWait
            | State::TasReleaseWait
            | State::TicketTakeWait
            | State::TicketCheckWait
            | State::TicketReleaseWait
            | State::AbqlTakeWait
            | State::AbqlCheckWait
            | State::AbqlResetWait
            | State::AbqlReleaseWait
            | State::McsClearNextWait
            | State::McsClearFlagWait
            | State::McsSwapTailWait
            | State::McsLinkPredWait
            | State::McsSpinWait
            | State::McsCasTailWait
            | State::McsLoadNextWait
            | State::McsSetSuccWait { .. }
            | State::QslSpinWait
            | State::QslCasWait
            | State::QslFinalCheckWait
            | State::QslReleaseWait
            | State::QslSleeping => {
                panic!("step while an operation or sleep is outstanding ({:?})", self.state)
            }
        }
    }

    /// Reports the value returned by the last issued operation.
    ///
    /// # Panics
    ///
    /// Panics if no operation is outstanding.
    pub fn on_result(&mut self, value: u64) {
        coverage::record(coverage::LOCK_ON_RESULT.id(state_index(self.state)));
        self.state = match self.state {
            // TAS: spin read.
            State::TasSpinWait => {
                if value == 0 {
                    State::TasSwap
                } else {
                    State::TasPause
                }
            }
            // The swap itself: 0 means we won.
            State::TasSwapWait => {
                if value == 0 {
                    State::JustAcquired
                } else {
                    State::TasSpin
                }
            }
            State::TasReleaseWait => State::JustReleased,

            State::TicketTakeWait => {
                self.token = value >> 32;
                // The same word carries now_serving: check it right away.
                if value & 0xFFFF_FFFF == self.token {
                    State::JustAcquired
                } else {
                    State::TicketCheck
                }
            }
            State::TicketCheckWait => {
                if value & 0xFFFF_FFFF == self.token {
                    State::JustAcquired
                } else {
                    State::TicketPause
                }
            }
            State::TicketReleaseWait => State::JustReleased,

            State::AbqlTakeWait => {
                self.token = value % self.layout.threads() as u64;
                State::AbqlCheck
            }
            State::AbqlCheckWait => {
                let lane = self.layout.abql_slot_lane(self.token as usize);
                if (value >> (8 * lane)) & 0xFF == 1 {
                    State::AbqlReset // close the slot behind us
                } else {
                    State::AbqlPause
                }
            }
            State::AbqlResetWait => State::JustAcquired,
            State::AbqlReleaseWait => State::JustReleased,

            State::McsClearNextWait => State::McsClearFlag,
            State::McsClearFlagWait => State::McsSwapTail,
            State::McsSwapTailWait => {
                if value == 0 {
                    State::JustAcquired
                } else {
                    State::McsLinkPred { prev: value as usize - 1 }
                }
            }
            State::McsLinkPredWait => State::McsSpin,
            State::McsSpinWait => {
                if value == 1 {
                    State::JustAcquired
                } else {
                    State::McsPause
                }
            }
            State::McsCasTailWait => {
                if value == self.me as u64 + 1 {
                    // CAS succeeded: no successor.
                    State::JustReleased
                } else {
                    State::McsLoadNext
                }
            }
            State::McsLoadNextWait => {
                if value == 0 {
                    // Successor is mid-enqueue; wait for its link.
                    State::McsNextPause
                } else {
                    State::McsSetSucc { succ: value as usize - 1 }
                }
            }
            State::McsSetSuccWait { succ } => State::McsNotify { succ },

            State::QslSpinWait => {
                if value == 0 {
                    State::QslCas
                } else {
                    self.spend_retry(State::QslPause)
                }
            }
            State::QslCasWait => {
                if value == 0 {
                    State::JustAcquired
                } else {
                    self.spend_retry(State::QslPause)
                }
            }
            State::QslFinalCheckWait => {
                if value == 0 {
                    // Freed between the last poll and the final check:
                    // resume with a refilled budget instead of sleeping.
                    self.retries_left = self.retry_budget;
                    State::QslCas
                } else {
                    State::QslGoSleep
                }
            }
            State::QslReleaseWait => State::JustReleased,

            other => panic!("on_result with no outstanding operation ({other:?})"),
        };
    }

    /// Consumes one retry; at zero the thread heads for the final check
    /// before sleeping.
    fn spend_retry(&mut self, otherwise: State) -> State {
        if !self.primitive().has_sleep_phase() {
            return otherwise;
        }
        self.retries_left = self.retries_left.saturating_sub(1);
        if self.retries_left == 0 {
            State::QslFinalCheck
        } else {
            otherwise
        }
    }

    /// QSL: the OS woke the thread (wakeup IPI or invalidation of the
    /// monitored lock word); the spin budget refills and the spin
    /// resumes.
    ///
    /// # Panics
    ///
    /// Panics unless the handle was sleeping.
    pub fn on_wakeup(&mut self) {
        assert_eq!(self.state, State::QslSleeping, "wakeup for a thread that is not sleeping");
        self.retries_left = self.retry_budget;
        self.state = State::QslSpin;
    }

    /// Whether the handle is in the QSL sleep phase.
    pub fn is_sleeping(&self) -> bool {
        self.state == State::QslSleeping
    }
}

fn issue(op: MemOp) -> LockStep {
    LockStep::Issue(op)
}

fn issue_load(addr: Addr) -> LockStep {
    LockStep::Issue(MemOp { addr, kind: MemOpKind::Load, lock: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockPrimitive;

    fn layout(primitive: LockPrimitive, threads: usize) -> LockLayout {
        let n = LockLayout::words_needed(primitive, threads);
        LockLayout::new(primitive, threads, (0..n).map(|i| Addr::new(i as u64 * 128)).collect())
    }

    #[test]
    fn tas_wins_on_clean_swap() {
        let mut h = LockHandle::new(layout(LockPrimitive::Tas, 2), 0);
        h.begin_acquire();
        assert!(matches!(h.step(), LockStep::Issue(op) if op.kind == MemOpKind::Load));
        h.on_result(0);
        assert!(matches!(
            h.step(),
            LockStep::Issue(op) if op.kind == MemOpKind::CompareSwap { expected: 0, new: 1 }
        ));
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Acquired);
        assert!(h.is_held());
        h.begin_release();
        assert!(matches!(h.step(), LockStep::Issue(op) if op.kind == MemOpKind::Store(0)));
        h.on_result(1);
        assert_eq!(h.step(), LockStep::Released);
    }

    #[test]
    fn tas_spins_while_occupied() {
        let mut h = LockHandle::new(layout(LockPrimitive::Tas, 2), 0);
        h.begin_acquire();
        h.step();
        h.on_result(1); // occupied
        assert_eq!(h.step(), LockStep::Pause(SPIN_PAUSE));
        assert!(matches!(h.step(), LockStep::Issue(_)));
        h.on_result(0); // now free
        h.step();
        h.on_result(1); // but we lost the swap
        assert!(matches!(h.step(), LockStep::Issue(op) if op.kind == MemOpKind::Load));
    }

    #[test]
    fn ticket_waits_for_turn() {
        let mut h = LockHandle::new(layout(LockPrimitive::Ticket, 4), 1);
        h.begin_acquire();
        assert!(matches!(
            h.step(),
            LockStep::Issue(op) if op.kind == MemOpKind::FetchAdd(1 << 32)
        ));
        h.on_result(2 << 32); // my ticket = 2, now_serving = 0
        h.step();
        h.on_result(3_u64 << 32); // still serving 0
        assert!(matches!(h.step(), LockStep::Pause(_)));
        h.step();
        h.on_result((3 << 32) | 2); // my turn
        assert_eq!(h.step(), LockStep::Acquired);
        h.begin_release();
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.kind, MemOpKind::FetchAdd(1), "release bumps now_serving atomically");
        h.on_result((3 << 32) | 2);
        assert_eq!(h.step(), LockStep::Released);
    }

    #[test]
    fn ticket_take_can_acquire_immediately() {
        let mut h = LockHandle::new(layout(LockPrimitive::Ticket, 4), 0);
        h.begin_acquire();
        h.step();
        // Ticket 0 while now_serving is 0: the take itself acquires.
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Acquired);
    }

    #[test]
    fn abql_takes_slot_and_passes_baton() {
        let threads = 4;
        let l = layout(LockPrimitive::Abql, threads);
        let mut h = LockHandle::new(l.clone(), 2);
        h.begin_acquire();
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.abql_tail());
        h.on_result(5); // slot = 5 % 4 = 1 (lane 1 of the first block)
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.abql_slot_block(1));
        h.on_result(1 << 8); // lane 1 open
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(
            op.kind,
            MemOpKind::FetchAdd((1u64 << 8).wrapping_neg()),
            "close our lane without touching the others"
        );
        h.on_result(1 << 8);
        assert_eq!(h.step(), LockStep::Acquired);
        h.begin_release();
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.abql_slot_block(2), "baton to the next slot");
        assert_eq!(op.kind, MemOpKind::FetchAdd(1u64 << 16));
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Released);
    }

    #[test]
    fn abql_ignores_other_lanes_when_polling() {
        let l = layout(LockPrimitive::Abql, 4);
        let mut h = LockHandle::new(l, 0);
        h.begin_acquire();
        h.step();
        h.on_result(0); // slot 0, lane 0
        h.step();
        // Lanes 1..3 are set but not ours: keep spinning.
        h.on_result(0x0001_0100);
        assert!(matches!(h.step(), LockStep::Pause(_)));
    }

    #[test]
    fn mcs_uncontended_fast_path() {
        let l = layout(LockPrimitive::Mcs, 4);
        let mut h = LockHandle::new(l.clone(), 3);
        h.begin_acquire();
        // clear next, clear flag, swap tail.
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_next(3));
        h.on_result(0);
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_flag(3));
        h.on_result(0);
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_tail());
        assert_eq!(op.kind, MemOpKind::Swap(4));
        h.on_result(0); // tail was null: acquired
        assert_eq!(h.step(), LockStep::Acquired);
        // Release with no successor: CAS succeeds.
        h.begin_release();
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.kind, MemOpKind::CompareSwap { expected: 4, new: 0 });
        h.on_result(4);
        assert_eq!(h.step(), LockStep::Released);
    }

    #[test]
    fn mcs_contended_links_and_hands_off() {
        let l = layout(LockPrimitive::Mcs, 4);
        let mut h = LockHandle::new(l.clone(), 1);
        h.begin_acquire();
        h.step();
        h.on_result(0); // next cleared
        h.step();
        h.on_result(0); // flag cleared
        h.step();
        h.on_result(3); // tail held thread 2 (encoded 3)
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_next(2), "link into predecessor's next");
        assert_eq!(op.kind, MemOpKind::Store(2));
        h.on_result(0);
        // Spin on own flag.
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_flag(1));
        h.on_result(0);
        assert!(matches!(h.step(), LockStep::Pause(_)));
        h.step();
        h.on_result(1); // predecessor handed off
        assert_eq!(h.step(), LockStep::Acquired);

        // Release with a successor: CAS fails, load next, set its flag.
        h.begin_release();
        h.step();
        h.on_result(4); // tail moved on: CAS failed
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_next(1));
        h.on_result(0); // successor mid-enqueue
        assert!(matches!(h.step(), LockStep::Pause(_)));
        h.step();
        h.on_result(4); // successor is thread 3
        let LockStep::Issue(op) = h.step() else { panic!() };
        assert_eq!(op.addr, l.mcs_flag(3));
        assert_eq!(op.kind, MemOpKind::Store(1));
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Released, "plain MCS does not notify");
    }

    #[test]
    fn qsl_sleeps_after_budget_and_wakes() {
        let l = layout(LockPrimitive::Qsl, 2);
        let mut h = LockHandle::with_retry_budget(l, 0, 2);
        h.begin_acquire();
        // Two failed polls exhaust the budget.
        h.step();
        h.on_result(1);
        assert_eq!(h.remaining_retries(), Some(1));
        assert!(matches!(h.step(), LockStep::Pause(_)));
        h.step();
        h.on_result(1);
        assert_eq!(h.remaining_retries(), Some(0));
        // Final check: still held -> sleep.
        let LockStep::Issue(op) = h.step() else { panic!("final check load") };
        assert!(!op.kind.is_write());
        h.on_result(1);
        assert_eq!(h.step(), LockStep::Sleep);
        assert!(h.is_sleeping());
        // Wakeup refills the budget and resumes the spin.
        h.on_wakeup();
        assert_eq!(h.remaining_retries(), Some(2));
        h.step();
        h.on_result(0); // freed
        let LockStep::Issue(op) = h.step() else { panic!("CAS attempt") };
        assert_eq!(op.kind, MemOpKind::CompareSwap { expected: 0, new: 1 });
        assert!(op.lock);
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Acquired);
    }

    #[test]
    fn qsl_final_check_rescues_a_freed_lock() {
        let l = layout(LockPrimitive::Qsl, 2);
        let mut h = LockHandle::with_retry_budget(l, 0, 1);
        h.begin_acquire();
        h.step();
        h.on_result(1); // budget gone
        h.step(); // final check
        h.on_result(0); // freed in the meantime
        assert!(!h.is_sleeping());
        let LockStep::Issue(op) = h.step() else { panic!("CAS attempt") };
        assert!(op.kind.is_write());
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Acquired);
        assert_eq!(h.remaining_retries(), Some(1), "budget refilled");
    }

    #[test]
    fn qsl_failed_cas_consumes_a_retry() {
        let l = layout(LockPrimitive::Qsl, 2);
        let mut h = LockHandle::with_retry_budget(l, 0, 2);
        h.begin_acquire();
        h.step();
        h.on_result(0); // looks free
        h.step(); // CAS
        h.on_result(1); // lost the race
        assert_eq!(h.remaining_retries(), Some(1));
        assert!(matches!(h.step(), LockStep::Pause(_)));
    }

    #[test]
    fn qsl_release_is_a_plain_store() {
        let l = layout(LockPrimitive::Qsl, 2);
        let mut h = LockHandle::new(l, 0);
        h.begin_acquire();
        h.step();
        h.on_result(0);
        h.step();
        h.on_result(0);
        assert_eq!(h.step(), LockStep::Acquired);
        h.begin_release();
        let LockStep::Issue(op) = h.step() else { panic!("release store") };
        assert_eq!(op.kind, MemOpKind::Store(0));
        assert!(!op.lock, "release store is not interceptable");
        h.on_result(1);
        assert_eq!(h.step(), LockStep::Released);
    }

    #[test]
    #[should_panic(expected = "begin_acquire on a non-idle handle")]
    fn double_acquire_panics() {
        let mut h = LockHandle::new(layout(LockPrimitive::Tas, 2), 0);
        h.begin_acquire();
        h.begin_acquire();
    }

    #[test]
    #[should_panic(expected = "without holding")]
    fn release_without_hold_panics() {
        let mut h = LockHandle::new(layout(LockPrimitive::Tas, 2), 0);
        h.begin_release();
    }

    #[test]
    #[should_panic(expected = "operation or sleep is outstanding")]
    fn step_before_result_panics() {
        let mut h = LockHandle::new(layout(LockPrimitive::Tas, 2), 0);
        h.begin_acquire();
        h.step();
        h.step();
    }
}
