//! # iNPG: In-Network Packet Generation for critical-section acceleration
//!
//! A from-scratch Rust reproduction of Yao & Lu, *iNPG: Accelerating
//! Critical Section Access with In-Network Packet Generation for NoC
//! Based Many-Cores* (HPCA 2018). The crate stacks a flit-level mesh NoC
//! ([`inpg_noc`]), a directory-MOESI coherence hierarchy
//! ([`inpg_coherence`]), five lock primitives ([`inpg_locks`]), a
//! many-core system model ([`inpg_manycore`]) and 24 synthetic benchmark
//! models ([`inpg_workloads`]) underneath a single experiment API.
//!
//! The headline mechanism: *big routers* hold a locking barrier table;
//! once a lock `GetX` passes through, later competing `GetX`s for the
//! same lock are stopped in the network. The router generates the
//! invalidation to the loser's L1 itself, forwards the stopped request
//! to the home node, and relays the acknowledgement — so losers are
//! invalidated *on the way to* the home node and the winner collects its
//! acknowledgements far earlier.
//!
//! # Quickstart
//!
//! ```
//! use inpg::{Experiment, Mechanism};
//!
//! // Compare the baseline against iNPG on the freqmine model
//! // (scaled down so the doctest stays quick).
//! let run = |m: Mechanism| {
//!     Experiment::benchmark("freq")
//!         .mechanism(m)
//!         .mesh(4, 4)
//!         .scale(0.01)
//!         .run()
//! };
//! let base = run(Mechanism::Original)?;
//! let inpg = run(Mechanism::Inpg)?;
//! assert!(base.completed && inpg.completed);
//! assert!(inpg.barrier.requests_stopped > 0, "early invalidation fired");
//! # Ok::<(), inpg::SimError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub mod experiment;
pub mod hardware;
pub mod mechanism;

pub use experiment::{Experiment, ExperimentResult, InvAckSummary, NocSummary};
pub use mechanism::Mechanism;

// Re-export the sub-crates so downstream users need a single dependency.
pub use inpg_coherence as coherence;
pub use inpg_locks as locks;
pub use inpg_manycore as manycore;
pub use inpg_noc as noc;
pub use inpg_sim as sim;
pub use inpg_stats as stats;
pub use inpg_workloads as workloads;

pub use inpg_locks::LockPrimitive;
pub use inpg_manycore::{
    InvariantViolation, Segment, SimError, StallReport, SystemConfig, ThreadProgram,
};
pub use inpg_noc::{FaultKind, FaultPlan};
