//! The four comparison mechanisms of the paper's evaluation (§5.1).

use inpg_manycore::SystemConfig;
use inpg_noc::BigRouterPlacement;
use std::fmt;
use std::str::FromStr;

/// Which competition-overhead-reduction mechanism is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Case 1: the baseline architecture (Table 1, no acceleration).
    Original,
    /// Case 2: OCOR — retry-count-prioritized lock packets (ISCA'16).
    Ocor,
    /// Case 3: iNPG — big routers generating early invalidations.
    Inpg,
    /// Case 4: both combined.
    InpgOcor,
}

impl Mechanism {
    /// The four cases in the paper's order.
    pub const ALL: [Mechanism; 4] =
        [Mechanism::Original, Mechanism::Ocor, Mechanism::Inpg, Mechanism::InpgOcor];

    /// Whether big routers are deployed.
    pub fn uses_inpg(self) -> bool {
        matches!(self, Mechanism::Inpg | Mechanism::InpgOcor)
    }

    /// Whether OCOR prioritization is active.
    pub fn uses_ocor(self) -> bool {
        matches!(self, Mechanism::Ocor | Mechanism::InpgOcor)
    }

    /// Applies the mechanism to a system configuration: sets the big
    /// router deployment (checkerboard for iNPG unless the config
    /// already chose one) and the OCOR flags.
    #[must_use]
    pub fn apply(self, mut cfg: SystemConfig) -> SystemConfig {
        cfg.noc.placement = if self.uses_inpg() {
            match cfg.noc.placement {
                BigRouterPlacement::None => BigRouterPlacement::Checkerboard,
                keep => keep,
            }
        } else {
            BigRouterPlacement::None
        };
        cfg.with_ocor(self.uses_ocor())
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Mechanism::Original => "Original",
            Mechanism::Ocor => "OCOR",
            Mechanism::Inpg => "iNPG",
            Mechanism::InpgOcor => "iNPG+OCOR",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an unknown mechanism name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMechanismError(String);

impl fmt::Display for ParseMechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown mechanism `{}`", self.0)
    }
}

impl std::error::Error for ParseMechanismError {}

impl FromStr for Mechanism {
    type Err = ParseMechanismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "original" | "baseline" => Ok(Mechanism::Original),
            "ocor" => Ok(Mechanism::Ocor),
            "inpg" => Ok(Mechanism::Inpg),
            "inpg+ocor" | "inpgocor" | "both" => Ok(Mechanism::InpgOcor),
            other => Err(ParseMechanismError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_sets_flags() {
        let base = SystemConfig::baseline();
        let cfg = Mechanism::Original.apply(base.clone());
        assert_eq!(cfg.noc.placement, BigRouterPlacement::None);
        assert!(!cfg.ocor);

        let cfg = Mechanism::Inpg.apply(base.clone());
        assert_eq!(cfg.noc.placement, BigRouterPlacement::Checkerboard);
        assert!(!cfg.ocor);

        let cfg = Mechanism::InpgOcor.apply(base.clone());
        assert!(cfg.ocor && cfg.noc.ocor_arbitration);
        assert_eq!(cfg.noc.placement, BigRouterPlacement::Checkerboard);

        let cfg = Mechanism::Ocor.apply(base);
        assert!(cfg.ocor);
        assert_eq!(cfg.noc.placement, BigRouterPlacement::None);
    }

    #[test]
    fn apply_keeps_explicit_deployment() {
        let mut base = SystemConfig::baseline();
        base.noc.placement = BigRouterPlacement::Spread(4);
        let cfg = Mechanism::Inpg.apply(base);
        assert_eq!(cfg.noc.placement, BigRouterPlacement::Spread(4));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for m in Mechanism::ALL {
            assert_eq!(m.to_string().parse::<Mechanism>().unwrap(), m);
        }
        assert!("turbo".parse::<Mechanism>().is_err());
    }
}
