//! Analytical synthesis/floorplan model reproducing the paper's Figure 7.
//!
//! The paper synthesized RTL for normal and big routers in a TSMC 40 nm
//! flow (Synopsys DC + Cadence SoC Encounter). We cannot run a licensed
//! flow, so this module reproduces the *derivation* of Figure 7a
//! bottom-up from the published per-module constants: the packet
//! generator's cost (dominated by the locking barrier table) is added to
//! a normal router to give the big router, tiles compose a core with a
//! router, and the chip composes 64 tiles. All constants at the default
//! 16-entry table match the paper's numbers exactly; other table sizes
//! scale the table-proportional share linearly (the paper states the
//! majority of the generator's 2.5 K gates come from the table).

use inpg_noc::{Coord, NocConfig};

/// Gate/power/area figures for one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleCost {
    /// Equivalent NAND gates (thousands).
    pub kgates: f64,
    /// Standard cells (thousands).
    pub kcells: f64,
    /// Dynamic power, milliwatts.
    pub dynamic_mw: f64,
    /// Silicon area, square millimetres.
    pub area_mm2: f64,
}

/// Figure 7a constants (TSMC 40 nm LP, typical, 1.1 V, 2.0 GHz).
mod paper {
    /// Normal router: 19.9 K gates.
    pub const ROUTER_KGATES: f64 = 19.9;
    /// Big router: 22.4 K gates.
    pub const BIG_ROUTER_KGATES: f64 = 22.4;
    /// Packet generator at 16 entries: 2.5 K gates.
    pub const PACKET_GEN_KGATES: f64 = BIG_ROUTER_KGATES - ROUTER_KGATES;
    /// Share of the generator that is the locking barrier table (the
    /// paper: "the majority coming from the locking barrier table").
    pub const TABLE_SHARE: f64 = 0.8;
    /// Default table entries in the synthesized design.
    pub const TABLE_ENTRIES: usize = 16;
    /// Core: 152.5 K gates.
    pub const CORE_KGATES: f64 = 152.5;
    /// Standard cells (thousands): core / big router / normal router.
    pub const CORE_KCELLS: f64 = 23.2;
    pub const BIG_ROUTER_KCELLS: f64 = 4.0;
    pub const ROUTER_KCELLS: f64 = 3.6;
    /// Dynamic power (mW).
    pub const CORE_MW: f64 = 623.5;
    pub const ROUTER_MW: f64 = 84.2;
    pub const PACKET_GEN_MW: f64 = 8.4;
    /// Areas (mm^2).
    pub const CORE_AREA: f64 = 2.03;
    pub const ROUTER_AREA: f64 = 0.21;
    /// Cell density before filler insertion.
    pub const CORE_DENSITY: f64 = 0.4826;
    pub const BIG_ROUTER_DENSITY: f64 = 0.6667;
    pub const ROUTER_DENSITY: f64 = 0.6190;
    /// Floorplan layer stack.
    pub const TOTAL_LAYERS: u32 = 28;
    pub const METAL_LAYERS: u32 = 10;
}

/// The packet generator added to a big router, scaled by barrier-table
/// size.
pub fn packet_generator(table_entries: usize) -> ModuleCost {
    let scale = table_entries as f64 / paper::TABLE_ENTRIES as f64;
    let kgates =
        paper::PACKET_GEN_KGATES * (1.0 - paper::TABLE_SHARE + paper::TABLE_SHARE * scale);
    // Power and cells scale with gates; area is absorbed into the router
    // tile (the paper keeps both router flavours in the same 0.21 mm^2
    // outline by raising cell density).
    let gate_ratio = kgates / paper::PACKET_GEN_KGATES;
    ModuleCost {
        kgates,
        kcells: (paper::BIG_ROUTER_KCELLS - paper::ROUTER_KCELLS) * gate_ratio,
        dynamic_mw: paper::PACKET_GEN_MW * gate_ratio,
        area_mm2: 0.0,
    }
}

/// A normal (transmit-only) router.
pub fn normal_router() -> ModuleCost {
    ModuleCost {
        kgates: paper::ROUTER_KGATES,
        kcells: paper::ROUTER_KCELLS,
        dynamic_mw: paper::ROUTER_MW,
        area_mm2: paper::ROUTER_AREA,
    }
}

/// A big router with a `table_entries`-entry locking barrier table.
pub fn big_router(table_entries: usize) -> ModuleCost {
    let gen = packet_generator(table_entries);
    let base = normal_router();
    ModuleCost {
        kgates: base.kgates + gen.kgates,
        kcells: base.kcells + gen.kcells,
        dynamic_mw: base.dynamic_mw + gen.dynamic_mw,
        area_mm2: base.area_mm2,
    }
}

/// The OpenRISC-class core used for floorplanning.
pub fn core() -> ModuleCost {
    ModuleCost {
        kgates: paper::CORE_KGATES,
        kcells: paper::CORE_KCELLS,
        dynamic_mw: paper::CORE_MW,
        area_mm2: paper::CORE_AREA,
    }
}

/// One tile (core + router); `big` selects the router flavour.
pub fn tile(big: bool, table_entries: usize) -> ModuleCost {
    let c = core();
    let r = if big { big_router(table_entries) } else { normal_router() };
    ModuleCost {
        kgates: c.kgates + r.kgates,
        kcells: c.kcells + r.kcells,
        dynamic_mw: c.dynamic_mw + r.dynamic_mw,
        area_mm2: c.area_mm2 + r.area_mm2,
    }
}

/// Whole-chip totals for a NoC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSummary {
    /// Tiles on the die.
    pub tiles: usize,
    /// Big routers deployed.
    pub big_routers: usize,
    /// Total equivalent gates (thousands).
    pub kgates: f64,
    /// Total dynamic power (watts).
    pub dynamic_w: f64,
    /// Total silicon area (mm^2).
    pub area_mm2: f64,
    /// Power overhead of the big-router deployment relative to an
    /// all-normal chip (fraction).
    pub power_overhead: f64,
}

/// Composes the chip of `cfg`: every tile has a core and a router, big
/// ones per the placement.
pub fn chip(cfg: &NocConfig) -> ChipSummary {
    let mut kgates = 0.0;
    let mut power = 0.0;
    let mut area = 0.0;
    let mut big = 0usize;
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            let is_big = cfg.placement.is_big(Coord::new(x, y), cfg.width, cfg.height);
            big += usize::from(is_big);
            let t = tile(is_big, cfg.barrier_entries);
            kgates += t.kgates;
            power += t.dynamic_mw;
            area += t.area_mm2;
        }
    }
    let tiles = cfg.nodes();
    let all_normal_power = tile(false, cfg.barrier_entries).dynamic_mw * tiles as f64;
    ChipSummary {
        tiles,
        big_routers: big,
        kgates,
        dynamic_w: power / 1_000.0,
        area_mm2: area,
        power_overhead: (power - all_normal_power) / all_normal_power,
    }
}

/// Cell density of the router outline (Figure 7a): the big router packs
/// more cells into the same 460 µm × 460 µm footprint.
pub fn router_cell_density(big: bool) -> f64 {
    if big {
        paper::BIG_ROUTER_DENSITY
    } else {
        paper::ROUTER_DENSITY
    }
}

/// Core cell density (Figure 7a).
pub fn core_cell_density() -> f64 {
    paper::CORE_DENSITY
}

/// Floorplan layer counts (Figure 7a): `(total, metal)`.
pub fn floorplan_layers() -> (u32, u32) {
    (paper::TOTAL_LAYERS, paper::METAL_LAYERS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inpg_noc::NocConfig;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn default_table_matches_figure7_exactly() {
        assert!(close(normal_router().kgates, 19.9));
        assert!(close(big_router(16).kgates, 22.4));
        assert!(close(packet_generator(16).kgates, 2.5));
        assert!(close(packet_generator(16).dynamic_mw, 8.4));
        assert!(close(big_router(16).dynamic_mw, 92.6));
        assert!(close(tile(true, 16).dynamic_mw, 716.1));
        assert!(close(tile(false, 16).dynamic_mw, 707.7));
        assert!(close(core().kgates, 152.5));
    }

    #[test]
    fn packet_generator_overhead_is_under_ten_percent() {
        // The paper reports 9.9% power overhead over a normal router.
        let overhead = packet_generator(16).dynamic_mw / normal_router().dynamic_mw;
        assert!((overhead - 0.0998).abs() < 0.001, "overhead {overhead}");
    }

    #[test]
    fn table_size_scales_generator() {
        assert!(packet_generator(4).kgates < packet_generator(16).kgates);
        assert!(packet_generator(64).kgates > packet_generator(16).kgates);
        // The fixed (non-table) logic never disappears.
        assert!(packet_generator(1).kgates > 0.4);
    }

    #[test]
    fn paper_chip_composition() {
        let summary = chip(&NocConfig::paper_default());
        assert_eq!(summary.tiles, 64);
        assert_eq!(summary.big_routers, 32);
        // 32 big + 32 normal tiles.
        let expected_power = (32.0 * 716.1 + 32.0 * 707.7) / 1000.0;
        assert!(close(summary.dynamic_w, expected_power));
        // Power overhead of the half-deployment: half of 8.4mW per tile.
        assert!((summary.power_overhead - 0.5 * 8.4 / 707.7).abs() < 1e-6);
        // Chip area: 64 tiles of core + router.
        assert!(close(summary.area_mm2, 64.0 * (2.03 + 0.21)));
    }

    #[test]
    fn densities_and_layers() {
        assert!(router_cell_density(true) > router_cell_density(false));
        assert!(close(core_cell_density(), 0.4826));
        assert_eq!(floorplan_layers(), (28, 10));
    }
}
