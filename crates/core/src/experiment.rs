//! The experiment runner: configures a full system for one (benchmark,
//! mechanism, primitive, …) point, runs it, and extracts the metrics the
//! paper's figures report.

use crate::mechanism::Mechanism;
use inpg_locks::LockPrimitive;
use inpg_manycore::{LockPlacement, SimError, System, SystemConfig, ThreadProgram};
use inpg_noc::{barrier::BarrierStats, BigRouterPlacement, FaultPlan};
use inpg_sim::{AbortHandle, CoreId, Cycle};
use inpg_stats::{PhaseCounters, Timeline};
use inpg_workloads::{generate, BenchmarkSpec, GenOptions};

/// What the experiment runs.
#[derive(Debug, Clone)]
enum Workload {
    /// One of the 24 modelled benchmarks.
    Benchmark(&'static BenchmarkSpec),
    /// Caller-supplied programs.
    Custom { name: String, programs: Vec<ThreadProgram>, locks: usize },
}

/// Builder for one experiment run.
///
/// # Example
///
/// ```
/// use inpg::{Experiment, Mechanism};
///
/// let result = Experiment::benchmark("freq")
///     .mechanism(Mechanism::Inpg)
///     .mesh(4, 4)
///     .scale(0.02)
///     .run()?;
/// assert!(result.completed);
/// assert!(result.cs_count > 0);
/// # Ok::<(), inpg::manycore::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    workload: Workload,
    mechanism: Mechanism,
    primitive: LockPrimitive,
    width: u8,
    height: u8,
    big_routers: Option<usize>,
    barrier_entries: usize,
    retry_budget: u32,
    scale: f64,
    seed: u64,
    record_timeline: bool,
    lock_home: Option<CoreId>,
    max_cycles: u64,
    watchdog_cycles: Option<u64>,
    check_invariants: Option<u64>,
    faults: FaultPlan,
    recover: bool,
    recovery_timeout: Option<u64>,
    recovery_retry_budget: Option<u32>,
    abort: Option<AbortHandle>,
}

impl Experiment {
    /// Starts an experiment on one of the 24 modelled benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a modelled benchmark; see
    /// [`BENCHMARKS`](inpg_workloads::BENCHMARKS).
    pub fn benchmark(name: &str) -> Self {
        let spec = inpg_workloads::benchmark(name)
            .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
        Self::for_workload(Workload::Benchmark(spec))
    }

    /// Starts an experiment from a benchmark spec reference.
    pub fn for_spec(spec: &'static BenchmarkSpec) -> Self {
        Self::for_workload(Workload::Benchmark(spec))
    }

    /// Starts an experiment on caller-supplied programs (one per core of
    /// the configured mesh) referencing `locks` lock instances.
    pub fn custom(
        name: impl Into<String>,
        programs: Vec<ThreadProgram>,
        locks: usize,
    ) -> Self {
        Self::for_workload(Workload::Custom { name: name.into(), programs, locks })
    }

    fn for_workload(workload: Workload) -> Self {
        Experiment {
            workload,
            mechanism: Mechanism::Original,
            primitive: LockPrimitive::Qsl,
            width: 8,
            height: 8,
            big_routers: None,
            barrier_entries: 16,
            retry_budget: 128,
            scale: 1.0,
            seed: 0x1a9e_4711,
            record_timeline: false,
            lock_home: None,
            max_cycles: 400_000_000,
            watchdog_cycles: None,
            check_invariants: None,
            faults: FaultPlan::none(),
            recover: false,
            recovery_timeout: None,
            recovery_retry_budget: None,
            abort: None,
        }
    }

    /// Selects the mechanism (default: Original).
    #[must_use]
    pub fn mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Selects the lock primitive (default: QSL, the paper's default).
    #[must_use]
    pub fn primitive(mut self, primitive: LockPrimitive) -> Self {
        self.primitive = primitive;
        self
    }

    /// Sets the mesh dimensions (default 8×8).
    #[must_use]
    pub fn mesh(mut self, width: u8, height: u8) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Overrides the number of big routers (spread evenly); `None`
    /// keeps the mechanism default (checkerboard for iNPG).
    #[must_use]
    pub fn big_routers(mut self, count: usize) -> Self {
        self.big_routers = Some(count);
        self
    }

    /// Sets the locking-barrier-table size (default 16).
    #[must_use]
    pub fn barrier_entries(mut self, entries: usize) -> Self {
        self.barrier_entries = entries;
        self
    }

    /// Sets the QSL retry budget (default 128).
    #[must_use]
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Scales benchmark CS counts (default 1.0 = the paper's Figure-8
    /// counts). Ignored for custom workloads.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records the full phase timeline (Figure 9 profiles).
    #[must_use]
    pub fn record_timeline(mut self, enabled: bool) -> Self {
        self.record_timeline = enabled;
        self
    }

    /// Homes every lock's primary word at `core` (Figure 10 homes the
    /// contended lock at tile (5, 6)).
    #[must_use]
    pub fn lock_home(mut self, core: CoreId) -> Self {
        self.lock_home = Some(core);
        self
    }

    /// Overrides the safety bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = max;
        self
    }

    /// Arms the forward-progress watchdog: the run aborts with a
    /// structured [`inpg_manycore::StallReport`] if no event retires for
    /// `cycles` consecutive cycles (default: disabled).
    #[must_use]
    pub fn watchdog_cycles(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// Runs the protocol invariant checker every `interval` cycles
    /// (default: disabled). The run aborts with a typed
    /// [`inpg_manycore::InvariantViolation`] on the first failure.
    #[must_use]
    pub fn check_invariants(mut self, interval: u64) -> Self {
        self.check_invariants = Some(interval);
        self
    }

    /// Installs a deterministic fault-injection plan on the NoC
    /// (default: none).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Arms the fault-recovery layer: timeout-based retransmission of
    /// wedged exclusive transactions with exponential backoff and
    /// home-side dedup (default: off, so injected faults abort the run).
    #[must_use]
    pub fn recover(mut self, enabled: bool) -> Self {
        self.recover = enabled;
        self
    }

    /// Overrides the base retransmission timeout in cycles (default:
    /// the [`SystemConfig`] default). Only meaningful with
    /// [`recover`](Self::recover).
    #[must_use]
    pub fn recovery_timeout(mut self, cycles: u64) -> Self {
        self.recovery_timeout = Some(cycles);
        self
    }

    /// Overrides the recovery retry budget — retransmissions allowed per
    /// transaction before recovery gives up (default: the
    /// [`SystemConfig`] default). Distinct from the QSL
    /// [`retry_budget`](Self::retry_budget).
    #[must_use]
    pub fn recovery_retry_budget(mut self, budget: u32) -> Self {
        self.recovery_retry_budget = Some(budget);
        self
    }

    /// Installs a cooperative abort flag on the run. When another
    /// thread raises the handle — a deadline passed, a service is
    /// draining — the simulation winds down with
    /// [`SimError::Aborted`](inpg_manycore::SimError) at its next poll
    /// point instead of running to `max_cycles`. A run that completes
    /// before the flag is raised is unaffected.
    #[must_use]
    pub fn abort_on(mut self, handle: AbortHandle) -> Self {
        self.abort = Some(handle);
        self
    }

    /// Like [`run`](Self::run), but measures the wall-clock time the
    /// run took and attaches it to the result, so
    /// [`ExperimentResult::sim_cycles_per_sec`] reports the simulator's
    /// throughput. This is the harness boundary: the simulator itself
    /// never reads a wall clock (determinism depends on that), only the
    /// code that invokes it does.
    ///
    /// # Errors
    ///
    /// Exactly as [`run`](Self::run).
    pub fn run_timed(self) -> Result<ExperimentResult, SimError> {
        let start = std::time::Instant::now();
        let mut result = self.run()?;
        result.attach_wall_nanos(start.elapsed().as_nanos() as u64);
        Ok(result)
    }

    /// Builds the system and runs it to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for inconsistent configurations,
    /// [`SimError::Stall`] when an armed watchdog fires, and
    /// [`SimError::Invariant`] when the invariant checker finds the
    /// protocol in an impossible state.
    pub fn run(self) -> Result<ExperimentResult, SimError> {
        let mut cfg = SystemConfig::baseline();
        cfg.noc.width = self.width;
        cfg.noc.height = self.height;
        cfg.noc.barrier_entries = self.barrier_entries;
        cfg.primitive = self.primitive;
        cfg.retry_budget = self.retry_budget;
        cfg.record_timeline = self.record_timeline;
        cfg.max_cycles = self.max_cycles;
        cfg.watchdog_cycles = self.watchdog_cycles;
        cfg.invariant_check_interval = self.check_invariants;
        cfg.noc.faults = self.faults.clone();
        cfg.recover = self.recover;
        if let Some(cycles) = self.recovery_timeout {
            cfg.recovery_timeout = cycles;
        }
        if let Some(budget) = self.recovery_retry_budget {
            cfg.recovery_retry_budget = budget;
        }
        let mut cfg = self.mechanism.apply(cfg);
        if let Some(count) = self.big_routers {
            cfg.noc.placement = if count == 0 {
                BigRouterPlacement::None
            } else {
                BigRouterPlacement::Spread(count)
            };
        }

        cfg.validate()?;
        let threads = cfg.cores();
        let (name, programs, locks) = match self.workload {
            Workload::Benchmark(spec) => {
                let programs = generate(
                    spec,
                    GenOptions { threads, scale: self.scale, seed: self.seed },
                );
                (spec.name.to_string(), programs, spec.locks)
            }
            Workload::Custom { name, programs, locks } => (name, programs, locks),
        };
        let placement = match self.lock_home {
            Some(core) => LockPlacement::At(core),
            None => LockPlacement::Interleaved,
        };

        let mut system = System::new(cfg, programs, locks, placement)?;
        if let Some(handle) = self.abort {
            system.set_abort(handle);
        }
        let run = system.run_checked()?;
        Ok(ExperimentResult::collect(
            name,
            self.mechanism,
            self.primitive,
            &system,
            run.cycles,
            run.completed,
        ))
    }
}

/// Summary of the invalidation–acknowledgement round trips (Figure 10).
#[derive(Debug, Clone)]
pub struct InvAckSummary {
    /// Mean round-trip delay, cycles.
    pub mean: f64,
    /// Maximum round-trip delay, cycles.
    pub max: u64,
    /// Round trips recorded.
    pub count: u64,
    /// Delay histogram (bucket i = i cycles, last saturates).
    pub histogram: Vec<u64>,
    /// Mean delay per invalidated core (the Figure 10a/10c map).
    pub per_core_mean: Vec<Option<f64>>,
}

impl InvAckSummary {
    /// The smallest delay `v` such that at least `pct` percent of round
    /// trips are `<= v` (capped at the histogram's saturating bucket).
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * pct / 100.0).ceil() as u64;
        let mut seen = 0;
        for (v, &n) in self.histogram.iter().enumerate() {
            seen += n;
            if seen >= target {
                return v as u64;
            }
        }
        self.histogram.len().saturating_sub(1) as u64
    }
}

/// Network-level summary.
#[derive(Debug, Clone, Copy)]
pub struct NocSummary {
    /// Packets delivered.
    pub delivered: u64,
    /// Mean end-to-end packet latency.
    pub mean_latency: f64,
    /// Packets generated by big routers.
    pub generated: u64,
    /// Early invalidations generated (stopped GetX count).
    pub early_invs: u64,
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Workload name.
    pub name: String,
    /// Mechanism that ran.
    pub mechanism: Mechanism,
    /// Lock primitive that ran.
    pub primitive: LockPrimitive,
    /// ROI finish time in cycles (the slowest thread's finish).
    pub roi_cycles: u64,
    /// Whether every thread finished within the cycle bound.
    pub completed: bool,
    /// Completed critical sections.
    pub cs_count: usize,
    /// Mean competition overhead per critical section, cycles.
    pub avg_cs_coh: f64,
    /// Mean execution time per critical section, cycles.
    pub avg_cs_cse: f64,
    /// Aggregate cycles per phase over all threads.
    pub total_parallel: u64,
    /// Total competition overhead cycles.
    pub total_coh: u64,
    /// Total critical-section execution cycles.
    pub total_cse: u64,
    /// Of the COH cycles, those spent descheduled.
    pub total_sleep: u64,
    /// Sum of lock-transaction occupancy cycles over all L1s (LCO).
    pub lco_cycles: u64,
    /// Sum of all memory-transaction occupancy cycles.
    pub mem_txn_cycles: u64,
    /// Invalidation round trips (direct + early merged).
    pub invack: InvAckSummary,
    /// Early (router-closed) round trips only; empty without big routers.
    pub invack_early: InvAckSummary,
    /// Network summary.
    pub noc: NocSummary,
    /// Barrier-table counters (zero when no big routers).
    pub barrier: BarrierStats,
    /// Invalidations the home nodes sent themselves.
    pub home_invs_sent: u64,
    /// Invalidations saved by early invalidation.
    pub home_invs_saved: u64,
    /// Aggregated L1 counters (hit/miss/latency breakdowns).
    pub l1: inpg_coherence::L1Stats,
    /// Aggregated home counters.
    pub home: inpg_coherence::HomeStats,
    /// Per-thread phase counters.
    pub per_thread: Vec<PhaseCounters>,
    /// Phase timeline, when recorded.
    pub timeline: Option<Timeline>,
    /// Wall-clock nanoseconds the run took, measured and attached by
    /// the harness ([`Experiment::run_timed`] or the campaign engine) —
    /// the simulator itself never reads a wall clock. `None` when the
    /// run was not timed.
    pub wall_nanos: Option<u64>,
}

impl ExperimentResult {
    fn collect(
        name: String,
        mechanism: Mechanism,
        primitive: LockPrimitive,
        system: &System,
        roi_cycles: u64,
        completed: bool,
    ) -> Self {
        let per_thread = system.thread_counters();
        let cs_count: usize = per_thread.iter().map(PhaseCounters::cs_count).sum();
        let total_cs_coh: u64 = per_thread.iter().map(PhaseCounters::total_cs_coh).sum();
        let total_cs_cse: u64 = per_thread.iter().map(PhaseCounters::total_cs_cse).sum();
        let roundtrips = system.invack_roundtrips();
        let (_, early) = system.invack_roundtrips_split();
        let cores = system.config().cores();
        let per_core_mean =
            (0..cores).map(|c| roundtrips.mean_for(CoreId::new(c))).collect();
        let early_per_core =
            (0..cores).map(|c| early.mean_for(CoreId::new(c))).collect();
        let noc = system.noc_stats();
        let (lco_cycles, mem_txn_cycles) = system.lco_cycles();
        let home = system.home_stats();
        ExperimentResult {
            name,
            mechanism,
            primitive,
            roi_cycles,
            completed,
            cs_count,
            avg_cs_coh: ratio(total_cs_coh, cs_count),
            avg_cs_cse: ratio(total_cs_cse, cs_count),
            total_parallel: per_thread.iter().map(|c| c.parallel_cycles).sum(),
            total_coh: per_thread.iter().map(|c| c.coh_cycles).sum(),
            total_cse: per_thread.iter().map(|c| c.cse_cycles).sum(),
            total_sleep: per_thread.iter().map(|c| c.sleep_cycles).sum(),
            lco_cycles,
            mem_txn_cycles,
            invack: InvAckSummary {
                mean: roundtrips.mean(),
                max: roundtrips.max(),
                count: roundtrips.total_count(),
                histogram: roundtrips.histogram().to_vec(),
                per_core_mean,
            },
            invack_early: InvAckSummary {
                mean: early.mean(),
                max: early.max(),
                count: early.total_count(),
                histogram: early.histogram().to_vec(),
                per_core_mean: early_per_core,
            },
            noc: NocSummary {
                delivered: noc.delivered,
                mean_latency: noc.mean_latency(),
                generated: noc.generated_packets,
                early_invs: noc.early_invs_generated,
            },
            barrier: system.barrier_stats(),
            home_invs_sent: home.invs_sent,
            home_invs_saved: home.invs_saved_by_early,
            l1: system.l1_stats(),
            home,
            per_thread,
            timeline: system.timeline().cloned(),
            wall_nanos: None,
        }
    }

    /// Attaches the wall-clock duration of the run, in nanoseconds.
    /// Called by the harness that timed the run; enables
    /// [`sim_cycles_per_sec`](Self::sim_cycles_per_sec).
    pub fn attach_wall_nanos(&mut self, nanos: u64) {
        self.wall_nanos = Some(nanos);
    }

    /// Simulated-cycles-per-second throughput: how many simulated
    /// cycles the host retired per wall-clock second. `None` when the
    /// run was not timed (or took less than a measurable instant).
    pub fn sim_cycles_per_sec(&self) -> Option<f64> {
        let nanos = self.wall_nanos.filter(|&n| n > 0)?;
        Some(self.roi_cycles as f64 * 1e9 / nanos as f64)
    }

    /// Mean critical-section access time (COH + CSE), the quantity
    /// Figure 11 normalizes. Lower is better.
    pub fn cs_access_time(&self) -> f64 {
        self.avg_cs_coh + self.avg_cs_cse
    }

    /// Fraction of LCO in total runtime (Figure 2's metric): lock
    /// coherence occupancy averaged over threads, relative to ROI time.
    pub fn lco_share(&self) -> f64 {
        if self.roi_cycles == 0 || self.per_thread.is_empty() {
            return 0.0;
        }
        self.lco_cycles as f64 / (self.roi_cycles as f64 * self.per_thread.len() as f64)
    }

    /// Phase shares over the whole run `(parallel, coh, cse)`.
    pub fn phase_shares(&self) -> (f64, f64, f64) {
        let total = (self.total_parallel + self.total_coh + self.total_cse) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.total_parallel as f64 / total,
            self.total_coh as f64 / total,
            self.total_cse as f64 / total,
        )
    }

    /// Critical sections completed in the first `window` cycles
    /// (Figure 9's "critical sections completed during the reported
    /// 30 000 CPU cycles"), over the first `threads` threads.
    pub fn cs_completed_within(&self, window: u64, threads: usize) -> usize {
        self.cs_completed_between(0, window, threads)
    }

    /// Critical sections completed in `[from, to)` over the first
    /// `threads` threads.
    pub fn cs_completed_between(&self, from: u64, to: u64, threads: usize) -> usize {
        self.per_thread
            .iter()
            .take(threads)
            .flat_map(|c| &c.cs_records)
            .filter(|r| r.finished_at >= Cycle::new(from) && r.finished_at < Cycle::new(to))
            .count()
    }
}

fn ratio(total: u64, count: usize) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inpg_manycore::ThreadProgram;
    use inpg_sim::LockId;

    fn tiny_custom(mechanism: Mechanism) -> ExperimentResult {
        let programs = (0..16)
            .map(|_| ThreadProgram::new().rounds(2, 60, LockId::new(0), 25))
            .collect();
        Experiment::custom("tiny", programs, 1)
            .mechanism(mechanism)
            .primitive(LockPrimitive::Tas)
            .mesh(4, 4)
            .max_cycles(3_000_000)
            .run()
            .expect("valid experiment")
    }

    #[test]
    fn runs_all_mechanisms_on_custom_workload() {
        for mechanism in Mechanism::ALL {
            let r = tiny_custom(mechanism);
            assert!(r.completed, "{mechanism}");
            assert_eq!(r.cs_count, 32, "{mechanism}");
            assert!(r.roi_cycles > 0);
            assert!(r.avg_cs_cse >= 25.0);
        }
    }

    #[test]
    fn inpg_generates_packets_baseline_does_not() {
        let base = tiny_custom(Mechanism::Original);
        assert_eq!(base.noc.generated, 0);
        assert_eq!(base.barrier.requests_stopped, 0);
        let inpg = tiny_custom(Mechanism::Inpg);
        assert!(inpg.noc.generated > 0);
        assert!(inpg.barrier.requests_stopped > 0);
    }

    #[test]
    fn benchmark_experiment_scales() {
        let r = Experiment::benchmark("vips")
            .mesh(4, 4)
            .scale(0.05)
            .max_cycles(10_000_000)
            .run()
            .unwrap();
        assert!(r.completed);
        assert!(r.cs_count >= 16);
        let (p, c, s) = r.phase_shares();
        assert!((p + c + s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = Experiment::benchmark("doom");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        // Zero-size mesh.
        assert!(Experiment::benchmark("vips").mesh(0, 4).scale(0.01).run().is_err());
        // Lock homed outside the mesh.
        assert!(Experiment::benchmark("vips")
            .mesh(2, 2)
            .scale(0.01)
            .lock_home(CoreId::new(99))
            .run()
            .is_err());
        // Zero barrier entries with big routers deployed.
        assert!(Experiment::benchmark("vips")
            .mechanism(Mechanism::Inpg)
            .mesh(2, 2)
            .scale(0.01)
            .barrier_entries(0)
            .run()
            .is_err());
    }

    #[test]
    fn a_raised_abort_handle_stops_the_run() {
        use inpg_manycore::SimError;
        use inpg_sim::AbortHandle;

        let programs: Vec<ThreadProgram> = (0..4)
            .map(|_| ThreadProgram::new().rounds(50, 400, LockId::new(0), 100))
            .collect();

        // Raised before the run starts: the simulator must wind down at
        // its first poll point, well short of the workload's runtime.
        let handle = AbortHandle::new();
        handle.abort();
        let err = Experiment::custom("aborted", programs.clone(), 1)
            .mesh(2, 2)
            .abort_on(handle)
            .run()
            .expect_err("a raised handle must abort the run");
        match err {
            SimError::Aborted { cycle } => assert!(cycle.as_u64() < 2048, "{cycle:?}"),
            other => panic!("expected Aborted, got {other:?}"),
        }

        // Never raised: the same workload completes normally and the
        // result matches a run with no handle at all.
        let with_handle = Experiment::custom("unaborted", programs.clone(), 1)
            .mesh(2, 2)
            .abort_on(AbortHandle::new())
            .run()
            .expect("unraised handle must not disturb the run");
        let without = Experiment::custom("unaborted", programs, 1)
            .mesh(2, 2)
            .run()
            .expect("plain run");
        assert!(with_handle.completed);
        assert_eq!(with_handle.roi_cycles, without.roi_cycles);
        assert_eq!(with_handle.cs_count, without.cs_count);
    }

    #[test]
    fn run_timed_attaches_throughput() {
        let programs = (0..4)
            .map(|_| ThreadProgram::new().rounds(1, 40, LockId::new(0), 20))
            .collect();
        let r = Experiment::custom("timed", programs, 1)
            .mesh(2, 2)
            .max_cycles(1_000_000)
            .run_timed()
            .expect("valid experiment");
        assert!(r.completed);
        let wall = r.wall_nanos.expect("wall time attached");
        assert!(wall > 0);
        let cps = r.sim_cycles_per_sec().expect("throughput derivable");
        assert!(cps > 0.0);
        assert!((cps - r.roi_cycles as f64 * 1e9 / wall as f64).abs() < 1e-6);

        // Untimed runs carry no wall clock and report no throughput.
        let programs = (0..4)
            .map(|_| ThreadProgram::new().rounds(1, 40, LockId::new(0), 20))
            .collect();
        let r = Experiment::custom("untimed", programs, 1)
            .mesh(2, 2)
            .max_cycles(1_000_000)
            .run()
            .expect("valid experiment");
        assert_eq!(r.wall_nanos, None);
        assert_eq!(r.sim_cycles_per_sec(), None);
    }

    #[test]
    fn invack_summary_percentile() {
        let summary = InvAckSummary {
            mean: 0.0,
            max: 9,
            count: 10,
            histogram: {
                let mut h = vec![0u64; 16];
                for slot in h.iter_mut().take(10) {
                    *slot += 1;
                }
                h
            },
            per_core_mean: vec![],
        };
        assert_eq!(summary.percentile(50.0), 4);
        assert_eq!(summary.percentile(100.0), 9);
        let empty = InvAckSummary {
            mean: 0.0,
            max: 0,
            count: 0,
            histogram: vec![0; 4],
            per_core_mean: vec![],
        };
        assert_eq!(empty.percentile(95.0), 0);
    }
}
