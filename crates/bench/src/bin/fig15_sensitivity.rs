//! Figure 15: iNPG's average ROI finish time reduction across NoC
//! dimensions (2×2, 4×4, 8×8, 16×16) and locking-barrier-table sizes
//! (4, 16, 64 entries).
//!
//! Paper shape: the benefit grows with the mesh (4.7% at 2×2 → 19.9% at
//! 8×8 → 57.5% at 16×16); 4-entry tables throttle iNPG on big meshes
//! while 16 vs 64 entries barely differ.

use inpg::stats::{pct, Table};
use inpg::{Experiment, Mechanism};
use inpg_bench::{mean, scale_from_env};
use inpg_locks::LockPrimitive;
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

const MESHES: [(u8, u8); 4] = [(2, 2), (4, 4), (8, 8), (16, 16)];
const TABLES: [usize; 3] = [4, 16, 64];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env(0.02);
    println!("Figure 15: iNPG ROI reduction vs mesh dimension x barrier-table size (QSL, scale {scale})\n");

    let subjects: Vec<&str> = BENCHMARKS
        .iter()
        .filter(|b| group_of(b) == CsGroup::High)
        .map(|b| b.name)
        .collect();

    let mut table = Table::new(vec!["mesh", "4 entries", "16 entries", "64 entries"]);
    for (w, h) in MESHES {
        // One baseline per (mesh, subject), shared across table sizes.
        let mut baselines = Vec::new();
        for name in &subjects {
            let base = Experiment::benchmark(name)
                .mechanism(Mechanism::Original)
                .primitive(LockPrimitive::Qsl)
                .mesh(w, h)
                .scale(scale)
                .run()?;
            assert!(base.completed, "{name} {w}x{h} baseline");
            baselines.push(base.roi_cycles as f64);
        }
        let mut row = vec![format!("{w}x{h}")];
        for entries in TABLES {
            let mut reductions = Vec::new();
            for (name, &base_roi) in subjects.iter().zip(&baselines) {
                let inpg = Experiment::benchmark(name)
                    .mechanism(Mechanism::Inpg)
                    .primitive(LockPrimitive::Qsl)
                    .mesh(w, h)
                    .barrier_entries(entries)
                    .scale(scale)
                    .run()?;
                assert!(inpg.completed, "{name} {w}x{h} {entries}");
                reductions.push(1.0 - inpg.roi_cycles as f64 / base_roi);
            }
            row.push(pct(mean(&reductions)));
        }
        table.add_row(row);
        eprintln!("[fig15] {w}x{h} done");
    }
    println!("{table}");
    println!("(Paper: benefit grows with mesh size; 4 entries throttle big meshes;");
    println!(" 16 vs 64 entries barely differ — 16 is chosen as the default.)");
    Ok(())
}
