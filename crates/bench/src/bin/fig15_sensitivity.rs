//! Figure 15: iNPG's average ROI finish time reduction across NoC
//! dimensions (2×2, 4×4, 8×8, 16×16) and locking-barrier-table sizes
//! (4, 16, 64 entries).
//!
//! Paper shape: the benefit grows with the mesh (4.7% at 2×2 → 19.9% at
//! 8×8 → 57.5% at 16×16); 4-entry tables throttle iNPG on big meshes
//! while 16 vs 64 entries barely differ.

use inpg::stats::pct;
use inpg_bench::{figure_report, mean, scale_from_env, FigureMatrix};
use inpg_campaign::suites::{self, FIG15_MESHES, FIG15_TABLES};
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

fn main() {
    let scale = scale_from_env(0.02);
    println!("Figure 15: iNPG ROI reduction vs mesh dimension x barrier-table size (QSL, scale {scale})\n");

    let subjects: Vec<&str> = BENCHMARKS
        .iter()
        .filter(|b| group_of(b) == CsGroup::High)
        .map(|b| b.name)
        .collect();

    let report = figure_report(&suites::fig15(scale));
    let mut matrix =
        FigureMatrix::new("mesh", &["4 entries", "16 entries", "64 entries"]);
    for (w, h) in FIG15_MESHES {
        let values = FIG15_TABLES
            .map(|entries| {
                let reductions: Vec<f64> = subjects
                    .iter()
                    .map(|name| {
                        let base =
                            report.record(&format!("{w}x{h}/{name}/base")).roi_cycles as f64;
                        let inpg =
                            report.record(&format!("{w}x{h}/{name}/e{entries}")).roi_cycles
                                as f64;
                        1.0 - inpg / base
                    })
                    .collect();
                mean(&reductions)
            })
            .to_vec();
        matrix.add_row(&format!("{w}x{h}"), None, values);
    }
    println!("{}", matrix.main_table(pct));
    println!("(Paper: benefit grows with mesh size; 4 entries throttle big meshes;");
    println!(" 16 vs 64 entries barely differ — 16 is chosen as the default.)");
}
