//! Figure 8: (a) total CS access counts and average CPU cycles per CS
//! for the 24 programs; (b) the COH vs CSE breakdown of total CS time
//! and the three benchmark groups.

use inpg::stats::{pct, Table};
use inpg_bench::{figure_report, scale_from_env};
use inpg_campaign::suites;
use inpg_workloads::{group_of, BENCHMARKS};

fn main() {
    let scale = scale_from_env(0.2);

    println!("Figure 8a: benchmark CS characteristics (model signatures)\n");
    let mut table =
        Table::new(vec!["benchmark", "suite", "total CS", "avg cycles/CS", "locks", "group"]);
    let mut ordered: Vec<_> = BENCHMARKS.iter().collect();
    ordered.sort_by_key(|b| b.total_cs_time());
    for spec in &ordered {
        table.add_row(vec![
            spec.name.to_string(),
            spec.suite.to_string(),
            spec.total_cs.to_string(),
            spec.avg_cs_cycles.to_string(),
            spec.locks.to_string(),
            group_of(spec).to_string(),
        ]);
    }
    println!("{table}");

    println!("Figure 8b: measured COH vs CSE breakdown (Original, QSL, scale {scale})\n");
    let report = figure_report(&suites::fig08(scale));
    let mut table = Table::new(vec![
        "benchmark",
        "group",
        "COH share of CS time",
        "CSE share of CS time",
        "avg COH/CS",
        "avg CSE/CS",
    ]);
    for spec in &ordered {
        let r = report.record(spec.name);
        let total = r.avg_cs_coh + r.avg_cs_cse;
        table.add_row(vec![
            spec.name.to_string(),
            group_of(spec).to_string(),
            pct(r.avg_cs_coh / total),
            pct(r.avg_cs_cse / total),
            format!("{:.0}", r.avg_cs_coh),
            format!("{:.0}", r.avg_cs_cse),
        ]);
    }
    println!("{table}");
    println!("(Paper shape: COH dominates CSE for most programs; groups split 6/12/6.)");
}
