//! Figure 14: critical-section expedition with different big-router
//! deployments (0, 4, 16, 32, 64 big routers, spread evenly).
//!
//! Paper shape: COH expedition grows with the number of big routers but
//! saturates — 32 big routers capture nearly all of the 64-router gain
//! (CSE is untouched).

use inpg::stats::{speedup, Table};
use inpg_bench::{figure_report, geomean, scale_from_env, FigureMatrix};
use inpg_campaign::suites::{self, FIG14_DEPLOYMENTS};
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

fn main() {
    let scale = scale_from_env(0.05);
    println!("Figure 14: CS expedition vs big-router deployment (QSL, scale {scale})\n");

    // The Group 3 (high CS time) programs: the paper's sensitivity
    // trends are clearest where competition dominates, and every program
    // shows the same saturation shape.
    let subjects: Vec<&str> = BENCHMARKS
        .iter()
        .filter(|b| group_of(b) == CsGroup::High)
        .map(|b| b.name)
        .collect();

    let report = figure_report(&suites::fig14(scale));
    let mut matrix = FigureMatrix::new("benchmark", &["0", "4", "16", "32", "64"]);
    for name in &subjects {
        let base_cs = report.record(&format!("{name}/br0")).cs_access_time();
        let values = FIG14_DEPLOYMENTS
            .map(|count| {
                base_cs / report.record(&format!("{name}/br{count}")).cs_access_time()
            })
            .to_vec();
        matrix.add_row(name, None, values);
    }
    println!("{}", matrix.main_table(speedup));

    let mut summary = Table::new(vec!["big routers", "avg CS expedition"]);
    for (i, count) in FIG14_DEPLOYMENTS.into_iter().enumerate() {
        summary.add_row(vec![count.to_string(), speedup(matrix.column_agg(i, geomean))]);
    }
    println!("{summary}");
    println!("(Paper: monotone improvement, marginal gain from 32 to 64 big routers.)");
}
