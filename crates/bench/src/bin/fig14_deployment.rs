//! Figure 14: critical-section expedition with different big-router
//! deployments (0, 4, 16, 32, 64 big routers, spread evenly).
//!
//! Paper shape: COH expedition grows with the number of big routers but
//! saturates — 32 big routers capture nearly all of the 64-router gain
//! (CSE is untouched).

use inpg::stats::{speedup, Table};
use inpg::{Experiment, Mechanism};
use inpg_bench::{geomean, scale_from_env};
use inpg_locks::LockPrimitive;
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

const DEPLOYMENTS: [usize; 5] = [0, 4, 16, 32, 64];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env(0.05);
    println!("Figure 14: CS expedition vs big-router deployment (QSL, scale {scale})\n");

    // Use the Group 3 (high CS time) programs: the paper's sensitivity
    // trends are clearest where competition dominates, and every program
    // shows the same saturation shape.
    let subjects: Vec<&str> = BENCHMARKS
        .iter()
        .filter(|b| group_of(b) == CsGroup::High)
        .map(|b| b.name)
        .collect();

    let mut table = Table::new(vec!["benchmark", "0", "4", "16", "32", "64"]);
    let mut per_deploy: Vec<Vec<f64>> = vec![Vec::new(); DEPLOYMENTS.len()];
    for name in &subjects {
        let mut baseline_cs = None;
        let mut row = vec![name.to_string()];
        for (i, &count) in DEPLOYMENTS.iter().enumerate() {
            let r = Experiment::benchmark(name)
                .mechanism(if count == 0 { Mechanism::Original } else { Mechanism::Inpg })
                .primitive(LockPrimitive::Qsl)
                .big_routers(count)
                .scale(scale)
                .run()?;
            assert!(r.completed, "{name} with {count} big routers");
            let cs_time = r.cs_access_time();
            let expedition = match baseline_cs {
                None => {
                    baseline_cs = Some(cs_time);
                    1.0
                }
                Some(base) => base / cs_time,
            };
            per_deploy[i].push(expedition);
            row.push(speedup(expedition));
        }
        table.add_row(row);
    }
    println!("{table}");

    let mut summary = Table::new(vec!["big routers", "avg CS expedition"]);
    for (i, &count) in DEPLOYMENTS.iter().enumerate() {
        summary.add_row(vec![count.to_string(), speedup(geomean(&per_deploy[i]))]);
    }
    println!("{summary}");
    println!("(Paper: monotone improvement, marginal gain from 32 to 64 big routers.)");
    Ok(())
}
