//! Figure 10: average coherence invalidation–acknowledgement round-trip
//! delay per core (map) and its histogram, Original vs iNPG, for a
//! scenario where all 64 threads compete for one lock homed at tile
//! (5, 6).
//!
//! Paper shape: without iNPG the delay grows with distance from the home
//! node (mean 39.2, max 97, long tail); with iNPG the delay is flat and
//! short (mean 9.5, max 15).

use inpg::Mechanism;
use inpg_bench::{figure_report, scale_from_env};
use inpg_campaign::{suites, CellRecord};

fn print_map(label: &str, r: &CellRecord) {
    println!(
        "{label}: mean {:.1} cycles, max {} cycles, {} round trips",
        r.invack.mean, r.invack.max, r.invack.count
    );
    println!("per-core mean Inv-Ack round-trip delay (8x8 map, '-' = never invalidated):");
    for y in 0..8 {
        let mut row = String::new();
        for x in 0..8 {
            let idx = y * 8 + x;
            let cell = match r.invack.per_core_mean[idx] {
                Some(v) => format!("{v:5.1}"),
                None => "    -".to_string(),
            };
            row.push_str(&cell);
            row.push(' ');
        }
        println!("  {row}");
    }
    println!("histogram (cycles: count), nonzero buckets:");
    let mut shown = 0;
    for (v, &n) in r.invack.histogram.iter().enumerate() {
        if n > 0 {
            print!("  {v}:{n}");
            shown += 1;
            if shown % 10 == 0 {
                println!();
            }
        }
    }
    println!("\n");
}

fn main() {
    let scale = scale_from_env(0.1);
    println!("Figure 10: Inv-Ack round-trip delay, 64 threads competing, lock homed at (5,6)\n");
    let report = figure_report(&suites::fig10(scale));
    let original = report.record(&Mechanism::Original.to_string());
    let inpg = report.record(&Mechanism::Inpg.to_string());
    print_map("Original (Figures 10a/10b)", original);
    print_map("iNPG, all round trips", inpg);
    println!(
        "iNPG early (router-closed) round trips only — the paper's Figures 10c/10d          plot these: mean {:.1}, max {} over {} trips",
        inpg.invack_early.mean, inpg.invack_early.max, inpg.invack_early.count
    );
    println!(
        "summary: mean {:.1} -> {:.1} (early-only {:.1}) cycles, max {} -> {}",
        original.invack.mean,
        inpg.invack.mean,
        inpg.invack_early.mean,
        original.invack.max,
        inpg.invack.max
    );
    println!("(Paper: mean 39.2 -> 9.5, max 97 -> 15; the long tail disappears.)");
}
