//! Ablations for the design knobs DESIGN.md calls out beyond the paper's
//! own sensitivity studies: barrier TTL, QSL retry budget, and the
//! big-router deployment *pattern* (checkerboard vs evenly spread) at a
//! fixed router count.

use inpg::stats::{pct, Table};
use inpg_bench::{figure_report, mean, scale_from_env};
use inpg_campaign::engine::CampaignReport;
use inpg_campaign::suites::{self, ABLATION_BUDGETS, ABLATION_ENTRIES, ABLATION_SUBJECTS};

/// Average iNPG ROI reduction over the subjects for one knob setting,
/// from the campaign's records.
fn avg_reduction(report: &CampaignReport, cell: &str) -> f64 {
    let reductions: Vec<f64> = ABLATION_SUBJECTS
        .iter()
        .map(|subject| {
            let base = report.record(&format!("{subject}/base")).roi_cycles as f64;
            let exp = report.record(&format!("{subject}/{cell}")).roi_cycles as f64;
            1.0 - exp / base
        })
        .collect();
    mean(&reductions)
}

fn main() {
    let scale = scale_from_env(0.1);
    println!("Ablations (QSL, scale {scale}, subjects: {ABLATION_SUBJECTS:?})\n");

    let report = figure_report(&suites::ablation(scale));

    // Retry budget: how the QSL sleep threshold interacts with iNPG.
    let mut table = Table::new(vec!["QSL retry budget", "iNPG ROI reduction (avg)"]);
    for budget in ABLATION_BUDGETS {
        table.add_row(vec![
            budget.to_string(),
            pct(avg_reduction(&report, &format!("budget{budget}"))),
        ]);
    }
    println!("{table}");

    // Deployment pattern at 32 big routers: checkerboard (paper default,
    // the plain-iNPG cell) vs row-major spread.
    let mut table = Table::new(vec!["deployment (32 big routers)", "iNPG ROI reduction (avg)"]);
    table.add_row(vec!["checkerboard".into(), pct(avg_reduction(&report, "budget128"))]);
    table.add_row(vec!["spread (row-major)".into(), pct(avg_reduction(&report, "spread32"))]);
    println!("{table}");

    // Barrier table size beyond the paper's 4/16/64 points.
    let mut table = Table::new(vec!["barrier entries", "iNPG ROI reduction (avg)"]);
    for entries in ABLATION_ENTRIES {
        table.add_row(vec![
            entries.to_string(),
            pct(avg_reduction(&report, &format!("entries{entries}"))),
        ]);
    }
    println!("{table}");
}
