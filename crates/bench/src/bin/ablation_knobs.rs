//! Ablations for the design knobs DESIGN.md calls out beyond the paper's
//! own sensitivity studies: barrier TTL, QSL retry budget, and the
//! big-router deployment *pattern* (checkerboard vs evenly spread) at a
//! fixed router count.

use inpg::stats::{pct, Table};
use inpg::{Experiment, Mechanism};
use inpg_bench::{mean, scale_from_env};
use inpg_locks::LockPrimitive;

const SUBJECTS: [&str; 3] = ["kdtree", "fluid", "dedup"];

fn roi_reduction(subject: &str, configure: impl Fn(Experiment) -> Experiment, scale: f64) -> f64 {
    let base = Experiment::benchmark(subject)
        .mechanism(Mechanism::Original)
        .primitive(LockPrimitive::Qsl)
        .scale(scale)
        .run()
        .expect("baseline");
    let exp = configure(
        Experiment::benchmark(subject)
            .mechanism(Mechanism::Inpg)
            .primitive(LockPrimitive::Qsl)
            .scale(scale),
    )
    .run()
    .expect("experiment");
    assert!(base.completed && exp.completed, "{subject}");
    1.0 - exp.roi_cycles as f64 / base.roi_cycles as f64
}

fn main() {
    let scale = scale_from_env(0.1);
    println!("Ablations (QSL, scale {scale}, subjects: {SUBJECTS:?})\n");

    // Retry budget: how the QSL sleep threshold interacts with iNPG.
    let mut table = Table::new(vec!["QSL retry budget", "iNPG ROI reduction (avg)"]);
    for budget in [16u32, 64, 128, 512] {
        let reductions: Vec<f64> = SUBJECTS
            .iter()
            .map(|s| roi_reduction(s, |e| e.retry_budget(budget), scale))
            .collect();
        table.add_row(vec![budget.to_string(), pct(mean(&reductions))]);
    }
    println!("{table}");

    // Deployment pattern at 32 big routers: checkerboard (paper default)
    // vs row-major spread.
    let mut table = Table::new(vec!["deployment (32 big routers)", "iNPG ROI reduction (avg)"]);
    let checker: Vec<f64> =
        SUBJECTS.iter().map(|s| roi_reduction(s, |e| e, scale)).collect();
    let spread: Vec<f64> =
        SUBJECTS.iter().map(|s| roi_reduction(s, |e| e.big_routers(32), scale)).collect();
    table.add_row(vec!["checkerboard".into(), pct(mean(&checker))]);
    table.add_row(vec!["spread (row-major)".into(), pct(mean(&spread))]);
    println!("{table}");

    // Barrier table size beyond the paper's 4/16/64 points.
    let mut table = Table::new(vec!["barrier entries", "iNPG ROI reduction (avg)"]);
    for entries in [1usize, 2, 8, 16, 32] {
        let reductions: Vec<f64> = SUBJECTS
            .iter()
            .map(|s| roi_reduction(s, |e| e.barrier_entries(entries), scale))
            .collect();
        table.add_row(vec![entries.to_string(), pct(mean(&reductions))]);
    }
    println!("{table}");
}
