//! Figure 9: execution timing profile of freqmine under the four
//! mechanisms — phase shares (parallel / COH / CSE) over the first
//! 30 000 cycles of the first 8 threads, and critical sections completed
//! in that window.

use inpg::stats::{pct, render_timeline, timeline_legend, Table};
use inpg::Mechanism;
use inpg_bench::{figure_report, scale_from_env};
use inpg_campaign::suites;
use inpg_sim::Cycle;

const WINDOW: u64 = 30_000;
const THREADS_SHOWN: usize = 8;

fn main() {
    let scale = scale_from_env(0.2);
    println!(
        "Figure 9: freqmine timing profile, first {THREADS_SHOWN} threads, a {WINDOW}-cycle steady-state window (QSL, scale {scale})\n"
    );

    // Timeline cells are uncacheable, so the campaign always hands back
    // fresh in-process results carrying the full timeline.
    let report = figure_report(&suites::fig09(scale));

    let mut table = Table::new(vec![
        "mechanism",
        "parallel",
        "COH",
        "CSE",
        "CS completed",
        "progress vs Original",
    ]);
    let mut base_cs = None;
    let mut window_start = None;
    for mechanism in Mechanism::ALL {
        let outcome = report
            .outcome(&mechanism.to_string())
            .expect("fig09 cell per mechanism");
        let r = outcome.fresh.as_ref().expect("timeline cells run fresh");
        let timeline = r.timeline.as_ref().expect("timeline recorded");
        // The paper profiles a mid-execution slice; we anchor the window
        // at 25% of the Original run's ROI so every mechanism is
        // measured over the same absolute cycles, past the warm-up.
        let start = *window_start.get_or_insert(r.roi_cycles / 4);
        let (parallel, coh, cse) =
            timeline.shares(Cycle::new(start), Cycle::new(start + WINDOW), Some(THREADS_SHOWN));
        let cs = r.cs_completed_between(start, start + WINDOW, THREADS_SHOWN);
        let progress = match base_cs {
            None => {
                base_cs = Some(cs);
                "-".to_string()
            }
            Some(base) => format!("{:+.1}%", (cs as f64 / base as f64 - 1.0) * 100.0),
        };
        table.add_row(vec![
            mechanism.to_string(),
            pct(parallel),
            pct(coh),
            pct(cse),
            cs.to_string(),
            progress,
        ]);
        println!("-- {mechanism} --");
        for row in render_timeline(
            timeline,
            Cycle::new(start),
            Cycle::new(start + WINDOW),
            THREADS_SHOWN,
            96,
        ) {
            println!("{row}");
        }
        println!();
    }
    println!("{}", timeline_legend());
    println!();
    println!("{table}");
    println!("(Paper: Original 62.1/28.3/9.6 with 78 CS; OCOR 69.8/19.8/10.4 with 92;");
    println!(" iNPG 73.0/17.0/10.0 with 96; iNPG+OCOR 80.1/9.0/10.9 with 104.)");
}
