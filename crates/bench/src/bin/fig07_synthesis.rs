//! Figure 7: synthesis and physical floorplan/layout results for one
//! big/normal router and the whole 64-core chip, from the analytical
//! hardware model (constants anchored to the paper's published numbers;
//! see `inpg::hardware`).

use inpg::hardware;
use inpg::stats::Table;
use inpg::noc::NocConfig;

fn main() {
    println!("Figure 7a: module synthesis and layout (TSMC 40 nm LP model)\n");

    let core = hardware::core();
    let big = hardware::big_router(16);
    let normal = hardware::normal_router();
    let generator = hardware::packet_generator(16);

    let mut table = Table::new(vec!["metric", "core", "big router", "router", "packet gen"]);
    let fmt1 = |v: f64| format!("{v:.1}");
    let fmt2 = |v: f64| format!("{v:.2}");
    table.add_row(vec![
        "gate count (K)".into(),
        fmt1(core.kgates),
        fmt1(big.kgates),
        fmt1(normal.kgates),
        fmt1(generator.kgates),
    ]);
    table.add_row(vec![
        "SC count (K)".into(),
        fmt1(core.kcells),
        fmt1(big.kcells),
        fmt1(normal.kcells),
        fmt1(generator.kcells),
    ]);
    table.add_row(vec![
        "dyn. power (mW)".into(),
        fmt1(core.dynamic_mw),
        fmt1(big.dynamic_mw),
        fmt1(normal.dynamic_mw),
        fmt1(generator.dynamic_mw),
    ]);
    table.add_row(vec![
        "area (mm^2)".into(),
        fmt2(core.area_mm2),
        fmt2(big.area_mm2),
        fmt2(normal.area_mm2),
        "-".into(),
    ]);
    table.add_row(vec![
        "cell density".into(),
        format!("{:.2}%", hardware::core_cell_density() * 100.0),
        format!("{:.2}%", hardware::router_cell_density(true) * 100.0),
        format!("{:.2}%", hardware::router_cell_density(false) * 100.0),
        "-".into(),
    ]);
    println!("{table}");

    let (layers, metal) = hardware::floorplan_layers();
    println!("floorplan: {layers} total layers, {metal} metal layers\n");

    println!("tiles: big {:.1} mW, normal {:.1} mW", hardware::tile(true, 16).dynamic_mw, hardware::tile(false, 16).dynamic_mw);

    let chip = hardware::chip(&NocConfig::paper_default());
    println!(
        "chip ({} tiles, {} big routers): {:.0} K gates, {:.2} W dynamic, {:.1} mm^2, +{:.2}% power vs all-normal",
        chip.tiles,
        chip.big_routers,
        chip.kgates,
        chip.dynamic_w,
        chip.area_mm2,
        chip.power_overhead * 100.0
    );

    println!("\nbarrier-table scaling of the packet generator:");
    let mut table = Table::new(vec!["entries", "gates (K)", "power (mW)"]);
    for entries in [4usize, 16, 64] {
        let g = hardware::packet_generator(entries);
        table.add_row(vec![entries.to_string(), format!("{:.2}", g.kgates), format!("{:.2}", g.dynamic_mw)]);
    }
    println!("{table}");
}
