//! Figure 11: critical-section expedition (normalized mean CS access
//! time, COH + CSE) achieved by the four mechanisms over all 24
//! programs, reported per group and overall.
//!
//! Paper shape: OCOR 1.45x avg (max 1.90x, dedup); iNPG 1.98x avg (max
//! 3.48x, nab); iNPG+OCOR 2.71x avg; gains grow from Group 1 to Group 3;
//! iNPG over OCOR: 1.35x avg.

use inpg::stats::{speedup, Welford};
use inpg::Mechanism;
use inpg_bench::{figure_report, geomean, scale_from_env, seeds_from_env, FigureMatrix};
use inpg_campaign::suites::{self, seed_label};
use inpg_workloads::{group_of, BENCHMARKS};

const SERIES: [Mechanism; 3] = [Mechanism::Ocor, Mechanism::Inpg, Mechanism::InpgOcor];

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 11: CS expedition vs Original (QSL, scale {scale})\n");

    let seeds = seeds_from_env();
    let report = figure_report(&suites::fig11(scale, &seeds));

    let mut matrix = FigureMatrix::new("benchmark", &["OCOR", "iNPG", "iNPG+OCOR"]);
    for spec in &BENCHMARKS {
        let values = SERIES
            .map(|mechanism| {
                let exps: Vec<f64> = seeds
                    .iter()
                    .map(|&seed| {
                        let label = |m: Mechanism| {
                            format!("{}/{m}/{}", spec.name, seed_label(seed))
                        };
                        let base = report.record(&label(Mechanism::Original));
                        let r = report.record(&label(mechanism));
                        base.cs_access_time() / r.cs_access_time()
                    })
                    .collect();
                geomean(&exps)
            })
            .to_vec();
        matrix.add_row(spec.name, Some(group_of(spec)), values);
    }
    println!("{}", matrix.main_table(speedup));
    println!("{}", matrix.summary_table("scope", geomean, speedup, "all 24 (geomean)"));

    for (i, name) in ["OCOR", "iNPG", "iNPG+OCOR"].iter().enumerate() {
        let (max, bench) = matrix.column_max(i);
        println!("max {name}: {} ({bench})", speedup(max));
    }
    let avg_ocor = matrix.column_agg(0, geomean);
    let avg_inpg = matrix.column_agg(1, geomean);
    println!("iNPG over OCOR: {} avg", speedup(avg_inpg / avg_ocor));

    // With 2+ seeds the overall expedition gets a Student-t 95% CI
    // over the per-seed geomeans, so the figure is reported with its
    // seed-to-seed uncertainty instead of a bare point estimate.
    if seeds.len() >= 2 {
        let parts: Vec<String> = SERIES
            .iter()
            .zip(["OCOR", "iNPG", "iNPG+OCOR"])
            .map(|(&mechanism, name)| {
                let mut w = Welford::new();
                for &seed in &seeds {
                    let per_bench: Vec<f64> = BENCHMARKS
                        .iter()
                        .map(|spec| {
                            let label = |m: Mechanism| {
                                format!("{}/{m}/{}", spec.name, seed_label(seed))
                            };
                            let base = report.record(&label(Mechanism::Original));
                            let r = report.record(&label(mechanism));
                            base.cs_access_time() / r.cs_access_time()
                        })
                        .collect();
                    w.push(geomean(&per_bench));
                }
                match w.estimate() {
                    Some(est) => format!("{name} {:.2} ±{:.2}", est.mean, est.ci95),
                    None => format!("{name} (no CI)"),
                }
            })
            .collect();
        println!("95% CI over {} seeds: {}", seeds.len(), parts.join(", "));
    }
}
