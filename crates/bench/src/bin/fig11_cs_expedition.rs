//! Figure 11: critical-section expedition (normalized mean CS access
//! time, COH + CSE) achieved by the four mechanisms over all 24
//! programs, reported per group and overall.
//!
//! Paper shape: OCOR 1.45x avg (max 1.90x, dedup); iNPG 1.98x avg (max
//! 3.48x, nab); iNPG+OCOR 2.71x avg; gains grow from Group 1 to Group 3;
//! iNPG over OCOR: 1.35x avg.

use inpg::stats::{speedup, Table};
use inpg::Mechanism;
use inpg_bench::{geomean, run_point_seeded, scale_from_env, seeds_from_env};
use inpg_locks::LockPrimitive;
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 11: CS expedition vs Original (QSL, scale {scale})\n");

    let mut table =
        Table::new(vec!["benchmark", "group", "OCOR", "iNPG", "iNPG+OCOR"]);
    let mut per_group: Vec<(CsGroup, [Vec<f64>; 3])> = vec![
        (CsGroup::Low, [vec![], vec![], vec![]]),
        (CsGroup::Medium, [vec![], vec![], vec![]]),
        (CsGroup::High, [vec![], vec![], vec![]]),
    ];
    let mut all: [Vec<(f64, &str)>; 3] = [vec![], vec![], vec![]];

    let seeds = seeds_from_env();
    for spec in &BENCHMARKS {
        let bases: Vec<_> = seeds
            .iter()
            .map(|&s| run_point_seeded(spec.name, Mechanism::Original, LockPrimitive::Qsl, scale, s))
            .collect();
        let mut row = vec![spec.name.to_string(), group_of(spec).to_string()];
        for (i, mechanism) in [Mechanism::Ocor, Mechanism::Inpg, Mechanism::InpgOcor]
            .into_iter()
            .enumerate()
        {
            let exps: Vec<f64> = seeds
                .iter()
                .zip(&bases)
                .map(|(&s, base)| {
                    let r = run_point_seeded(spec.name, mechanism, LockPrimitive::Qsl, scale, s);
                    base.cs_access_time() / r.cs_access_time()
                })
                .collect();
            let expedition = geomean(&exps);
            row.push(speedup(expedition));
            for (g, lists) in per_group.iter_mut() {
                if *g == group_of(spec) {
                    lists[i].push(expedition);
                }
            }
            all[i].push((expedition, spec.name));
        }
        table.add_row(row);
    }
    println!("{table}");

    let mut summary = Table::new(vec!["scope", "OCOR", "iNPG", "iNPG+OCOR"]);
    for (group, lists) in &per_group {
        summary.add_row(vec![
            group.to_string(),
            speedup(geomean(&lists[0])),
            speedup(geomean(&lists[1])),
            speedup(geomean(&lists[2])),
        ]);
    }
    let avg: Vec<f64> =
        all.iter().map(|v| geomean(&v.iter().map(|(e, _)| *e).collect::<Vec<_>>())).collect();
    summary.add_row(vec![
        "all 24 (geomean)".into(),
        speedup(avg[0]),
        speedup(avg[1]),
        speedup(avg[2]),
    ]);
    println!("{summary}");

    for (i, name) in ["OCOR", "iNPG", "iNPG+OCOR"].iter().enumerate() {
        let (max, bench) =
            all[i].iter().cloned().fold((0.0, ""), |acc, v| if v.0 > acc.0 { v } else { acc });
        println!("max {name}: {} ({bench})", speedup(max));
    }
    println!(
        "iNPG over OCOR: {} avg",
        speedup(avg[1] / avg[0])
    );
}
