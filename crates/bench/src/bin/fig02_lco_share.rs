//! Figure 2: percentage of lock coherence overhead (LCO) in application
//! running time under TAS, TTL, ABQL, MCS and QSL for kdtree, facesim
//! and fluidanimate.
//!
//! Paper shape: TAS highest (up to ~90% on facesim), then TTL ≈ ABQL,
//! with MCS and QSL lowest.

use inpg::stats::{pct, Table};
use inpg::Mechanism;
use inpg_bench::{run_point, scale_from_env};
use inpg_locks::LockPrimitive;

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 2: LCO share of application running time (scale {scale})\n");

    let mut table = Table::new(vec!["benchmark", "TAS", "TTL", "ABQL", "MCS", "QSL"]);
    for benchmark in ["kdtree", "face", "fluid"] {
        let mut row = vec![benchmark.to_string()];
        for primitive in LockPrimitive::ALL {
            let r = run_point(benchmark, Mechanism::Original, primitive, scale);
            row.push(pct(r.lco_share()));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!("(LCO = cycles with a lock-variable coherence transaction outstanding,");
    println!(" averaged over threads, relative to ROI runtime.)");
}
