//! Figure 2: percentage of lock coherence overhead (LCO) in application
//! running time under TAS, TTL, ABQL, MCS and QSL for kdtree, facesim
//! and fluidanimate.
//!
//! Paper shape: TAS highest (up to ~90% on facesim), then TTL ≈ ABQL,
//! with MCS and QSL lowest.

use inpg::stats::pct;
use inpg_bench::{figure_report, scale_from_env, FigureMatrix};
use inpg_campaign::suites;
use inpg_locks::LockPrimitive;

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 2: LCO share of application running time (scale {scale})\n");

    let report = figure_report(&suites::fig02(scale));
    let mut matrix =
        FigureMatrix::new("benchmark", &["TAS", "TTL", "ABQL", "MCS", "QSL"]);
    for benchmark in ["kdtree", "face", "fluid"] {
        let values = LockPrimitive::ALL
            .into_iter()
            .map(|primitive| report.record(&format!("{benchmark}/{primitive}")).lco_share())
            .collect();
        matrix.add_row(benchmark, None, values);
    }
    println!("{}", matrix.main_table(pct));
    println!("(LCO = cycles with a lock-variable coherence transaction outstanding,");
    println!(" averaged over threads, relative to ROI runtime.)");
}
