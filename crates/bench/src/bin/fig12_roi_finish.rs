//! Figure 12: relative application ROI finish time of the four
//! mechanisms (Original = 100%), per group and overall.
//!
//! Paper shape: OCOR 87.7%, iNPG 80.1%, iNPG+OCOR 75.3% on average;
//! reductions grow from Group 1 to Group 3; iNPG over OCOR improves ROI
//! by 7.8% avg / 14.7% max (bt331); the combination is sub-additive.

use inpg::stats::{pct, Welford};
use inpg::Mechanism;
use inpg_bench::{figure_report, mean, scale_from_env, seeds_from_env, FigureMatrix};
use inpg_campaign::suites::{self, seed_label};
use inpg_workloads::{group_of, BENCHMARKS};

const SERIES: [Mechanism; 3] = [Mechanism::Ocor, Mechanism::Inpg, Mechanism::InpgOcor];

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 12: relative ROI finish time (Original = 100%; QSL, scale {scale})\n");

    let seeds = seeds_from_env();
    // Same cell set (and cache entries) as Figure 11.
    let report = figure_report(&suites::fig12(scale, &seeds));

    let mut matrix = FigureMatrix::new("benchmark", &["OCOR", "iNPG", "iNPG+OCOR"]);
    for spec in &BENCHMARKS {
        let values = SERIES
            .map(|mechanism| {
                let rels: Vec<f64> = seeds
                    .iter()
                    .map(|&seed| {
                        let label = |m: Mechanism| {
                            format!("{}/{m}/{}", spec.name, seed_label(seed))
                        };
                        let base = report.record(&label(Mechanism::Original));
                        let r = report.record(&label(mechanism));
                        r.roi_cycles as f64 / base.roi_cycles as f64
                    })
                    .collect();
                mean(&rels)
            })
            .to_vec();
        matrix.add_row(spec.name, Some(group_of(spec)), values);
    }
    println!("{}", matrix.main_table(pct));
    println!("{}", matrix.summary_table("scope", mean, pct, "all 24 (mean)"));

    let ocor = matrix.column(0);
    let inpg = matrix.column(1);
    let best_gain = inpg
        .iter()
        .zip(&ocor)
        .zip(BENCHMARKS.iter())
        .map(|((i, o), spec)| (1.0 - i / o, spec.name))
        .fold((f64::MIN, ""), |acc, v| if v.0 > acc.0 { v } else { acc });
    println!(
        "iNPG over OCOR: {:.1}% avg ROI improvement, {:.1}% max ({})",
        (1.0 - mean(&inpg) / mean(&ocor)) * 100.0,
        best_gain.0 * 100.0,
        best_gain.1
    );

    // With 2+ seeds, the overall relative ROI carries a Student-t 95%
    // CI over the per-seed means of the 24-benchmark average.
    if seeds.len() >= 2 {
        let parts: Vec<String> = SERIES
            .iter()
            .zip(["OCOR", "iNPG", "iNPG+OCOR"])
            .map(|(&mechanism, name)| {
                let mut w = Welford::new();
                for &seed in &seeds {
                    let per_bench: Vec<f64> = BENCHMARKS
                        .iter()
                        .map(|spec| {
                            let label = |m: Mechanism| {
                                format!("{}/{m}/{}", spec.name, seed_label(seed))
                            };
                            let base = report.record(&label(Mechanism::Original));
                            let r = report.record(&label(mechanism));
                            r.roi_cycles as f64 / base.roi_cycles as f64
                        })
                        .collect();
                    w.push(mean(&per_bench));
                }
                match w.estimate() {
                    Some(est) => {
                        format!("{name} {:.1}% ±{:.1}%", est.mean * 100.0, est.ci95 * 100.0)
                    }
                    None => format!("{name} (no CI)"),
                }
            })
            .collect();
        println!("95% CI over {} seeds: {}", seeds.len(), parts.join(", "));
    }
}
