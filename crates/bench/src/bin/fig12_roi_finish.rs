//! Figure 12: relative application ROI finish time of the four
//! mechanisms (Original = 100%), per group and overall.
//!
//! Paper shape: OCOR 87.7%, iNPG 80.1%, iNPG+OCOR 75.3% on average;
//! reductions grow from Group 1 to Group 3; iNPG over OCOR improves ROI
//! by 7.8% avg / 14.7% max (bt331); the combination is sub-additive.

use inpg::stats::{pct, Table};
use inpg::Mechanism;
use inpg_bench::{mean, run_point_seeded, scale_from_env, seeds_from_env};
use inpg_locks::LockPrimitive;
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

fn main() {
    let scale = scale_from_env(0.2);
    println!("Figure 12: relative ROI finish time (Original = 100%; QSL, scale {scale})\n");

    let mut table = Table::new(vec!["benchmark", "group", "OCOR", "iNPG", "iNPG+OCOR"]);
    let mut per_group: Vec<(CsGroup, [Vec<f64>; 3])> = vec![
        (CsGroup::Low, [vec![], vec![], vec![]]),
        (CsGroup::Medium, [vec![], vec![], vec![]]),
        (CsGroup::High, [vec![], vec![], vec![]]),
    ];
    let mut all: [Vec<(f64, &str)>; 3] = [vec![], vec![], vec![]];

    let seeds = seeds_from_env();
    for spec in &BENCHMARKS {
        let mut row = vec![spec.name.to_string(), group_of(spec).to_string()];
        let bases: Vec<_> = seeds
            .iter()
            .map(|&s| run_point_seeded(spec.name, Mechanism::Original, LockPrimitive::Qsl, scale, s))
            .collect();
        for (i, mechanism) in [Mechanism::Ocor, Mechanism::Inpg, Mechanism::InpgOcor]
            .into_iter()
            .enumerate()
        {
            let rels: Vec<f64> = seeds
                .iter()
                .zip(&bases)
                .map(|(&s, base)| {
                    let r = run_point_seeded(spec.name, mechanism, LockPrimitive::Qsl, scale, s);
                    r.roi_cycles as f64 / base.roi_cycles as f64
                })
                .collect();
            let rel = mean(&rels);
            row.push(pct(rel));
            for (g, lists) in per_group.iter_mut() {
                if *g == group_of(spec) {
                    lists[i].push(rel);
                }
            }
            all[i].push((rel, spec.name));
        }
        table.add_row(row);
    }
    println!("{table}");

    let mut summary = Table::new(vec!["scope", "OCOR", "iNPG", "iNPG+OCOR"]);
    for (group, lists) in &per_group {
        summary.add_row(vec![
            group.to_string(),
            pct(mean(&lists[0])),
            pct(mean(&lists[1])),
            pct(mean(&lists[2])),
        ]);
    }
    let avg: Vec<f64> =
        all.iter().map(|v| mean(&v.iter().map(|(e, _)| *e).collect::<Vec<_>>())).collect();
    summary.add_row(vec![
        "all 24 (mean)".into(),
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
    ]);
    println!("{summary}");

    let best_gain = all[1]
        .iter()
        .zip(&all[0])
        .map(|((inpg, name), (ocor, _))| (1.0 - inpg / ocor, *name))
        .fold((f64::MIN, ""), |acc, v| if v.0 > acc.0 { v } else { acc });
    println!(
        "iNPG over OCOR: {:.1}% avg ROI improvement, {:.1}% max ({})",
        (1.0 - avg[1] / avg[0]) * 100.0,
        best_gain.0 * 100.0,
        best_gain.1
    );
}
