//! Figure 13: ROI finish time reduction achieved by iNPG under the five
//! locking primitives (TAS, TTL, ABQL, QSL, MCS), averaged over all 24
//! programs.
//!
//! Paper shape: TAS benefits most (52.8%), then TTL (33.4%) ≈ ABQL
//! (32.6%), then QSL (19.9%), then MCS (16.5%) — the less lock
//! competition traffic a primitive puts in the NoC, the smaller the win.

use inpg::stats::{pct, Table};
use inpg::Mechanism;
use inpg_bench::{figure_report, mean, scale_from_env, FigureMatrix};
use inpg_campaign::suites;
use inpg_locks::LockPrimitive;
use inpg_workloads::BENCHMARKS;

fn main() {
    let scale = scale_from_env(0.05);
    println!("Figure 13: ROI finish time reduction by iNPG per primitive (scale {scale})\n");

    let report = figure_report(&suites::fig13(scale));
    let mut matrix =
        FigureMatrix::new("benchmark", &["TAS", "TTL", "ABQL", "MCS", "QSL"]);
    for spec in &BENCHMARKS {
        let values = LockPrimitive::ALL
            .map(|primitive| {
                let label = |m: Mechanism| format!("{}/{primitive}/{m}", spec.name);
                let base = report.record(&label(Mechanism::Original));
                let inpg = report.record(&label(Mechanism::Inpg));
                1.0 - inpg.roi_cycles as f64 / base.roi_cycles as f64
            })
            .to_vec();
        matrix.add_row(spec.name, None, values);
    }
    println!("{}", matrix.main_table(pct));

    let mut summary = Table::new(vec!["primitive", "avg ROI reduction"]);
    for (i, primitive) in LockPrimitive::ALL.into_iter().enumerate() {
        summary.add_row(vec![primitive.to_string(), pct(matrix.column_agg(i, mean))]);
    }
    println!("{summary}");
    println!("(Paper: TAS 52.8%, TTL 33.4%, ABQL 32.6%, QSL 19.9%, MCS 16.5%.)");
}
