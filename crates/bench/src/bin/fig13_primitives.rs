//! Figure 13: ROI finish time reduction achieved by iNPG under the five
//! locking primitives (TAS, TTL, ABQL, QSL, MCS), averaged over all 24
//! programs.
//!
//! Paper shape: TAS benefits most (52.8%), then TTL (33.4%) ≈ ABQL
//! (32.6%), then QSL (19.9%), then MCS (16.5%) — the less lock
//! competition traffic a primitive puts in the NoC, the smaller the win.

use inpg::stats::{pct, Table};
use inpg::Mechanism;
use inpg_bench::{mean, run_point, scale_from_env};
use inpg_locks::LockPrimitive;
use inpg_workloads::BENCHMARKS;

fn main() {
    let scale = scale_from_env(0.05);
    println!("Figure 13: ROI finish time reduction by iNPG per primitive (scale {scale})\n");

    let mut table = Table::new(vec!["benchmark", "TAS", "TTL", "ABQL", "MCS", "QSL"]);
    let mut per_primitive: Vec<Vec<f64>> = vec![Vec::new(); LockPrimitive::ALL.len()];
    for spec in &BENCHMARKS {
        let mut row = vec![spec.name.to_string()];
        for (i, primitive) in LockPrimitive::ALL.into_iter().enumerate() {
            let base = run_point(spec.name, Mechanism::Original, primitive, scale);
            let inpg = run_point(spec.name, Mechanism::Inpg, primitive, scale);
            let reduction = 1.0 - inpg.roi_cycles as f64 / base.roi_cycles as f64;
            per_primitive[i].push(reduction);
            row.push(pct(reduction));
        }
        table.add_row(row);
    }
    println!("{table}");

    let mut summary = Table::new(vec!["primitive", "avg ROI reduction"]);
    for (i, primitive) in LockPrimitive::ALL.into_iter().enumerate() {
        summary.add_row(vec![primitive.to_string(), pct(mean(&per_primitive[i]))]);
    }
    println!("{summary}");
    println!("(Paper: TAS 52.8%, TTL 33.4%, ABQL 32.6%, QSL 19.9%, MCS 16.5%.)");
}
