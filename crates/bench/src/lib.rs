//! Benchmark harness support: shared helpers for the `fig*` binaries
//! that regenerate every table and figure of the paper's evaluation.
//!
//! Each binary prints the figure's rows/series as a text table. Scale is
//! controlled with the `INPG_SCALE` environment variable (1.0 = the
//! paper's full Figure-8 critical-section counts); the per-binary
//! defaults keep a full regeneration affordable on a laptop while
//! preserving every trend.

use inpg::{Experiment, ExperimentResult, Mechanism};
use inpg_locks::LockPrimitive;

/// Reads the workload scale from `INPG_SCALE`, falling back to
/// `default_scale`.
pub fn scale_from_env(default_scale: f64) -> f64 {
    std::env::var("INPG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(default_scale)
}

/// Workload seeds to average over, from `INPG_SEEDS` (default 1).
pub fn seeds_from_env() -> Vec<u64> {
    let n: u64 = std::env::var("INPG_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    (0..n).map(|i| 0x1a9e_4711 + i * 0x9e37).collect()
}

/// Like [`run_point`] with an explicit workload seed.
pub fn run_point_seeded(
    benchmark: &str,
    mechanism: Mechanism,
    primitive: LockPrimitive,
    scale: f64,
    seed: u64,
) -> ExperimentResult {
    let result = Experiment::benchmark(benchmark)
        .mechanism(mechanism)
        .primitive(primitive)
        .scale(scale)
        .seed(seed)
        .run()
        .unwrap_or_else(|e| panic!("{benchmark}/{mechanism}/{primitive}: {e}"));
    assert!(
        result.completed,
        "{benchmark}/{mechanism}/{primitive} did not complete within the cycle bound"
    );
    result
}

/// Runs one benchmark × mechanism × primitive point at `scale`,
/// panicking (with context) if it fails to complete.
pub fn run_point(
    benchmark: &str,
    mechanism: Mechanism,
    primitive: LockPrimitive,
    scale: f64,
) -> ExperimentResult {
    let result = Experiment::benchmark(benchmark)
        .mechanism(mechanism)
        .primitive(primitive)
        .scale(scale)
        .run()
        .unwrap_or_else(|e| panic!("{benchmark}/{mechanism}/{primitive}: {e}"));
    assert!(
        result.completed,
        "{benchmark}/{mechanism}/{primitive} did not complete within the cycle bound"
    );
    result
}

/// Geometric mean of a nonempty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a nonempty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
    }
}
