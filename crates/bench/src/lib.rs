//! Benchmark harness support: shared helpers for the `fig*` binaries
//! that regenerate every table and figure of the paper's evaluation.
//!
//! Since the campaign engine landed, the binaries are thin formatting
//! wrappers: each builds its cell set in [`inpg_campaign::suites`],
//! executes it through [`figure_report`] (parallel workers, resumable
//! content-addressed cache), and formats the returned records — most of
//! them through [`FigureMatrix`], which holds the per-benchmark /
//! per-group / overall summary shape the figures share.
//!
//! Environment knobs: `INPG_SCALE` (workload scale), `INPG_SEEDS` (seed
//! averaging), `INPG_WORKERS` (worker threads), `INPG_CACHE` (`0`
//! disables the result cache, a path relocates it; default
//! `results/cache`).

use inpg::stats::Table;
use inpg_campaign::engine::{execute, CampaignReport, ExecOptions};
use inpg_campaign::Campaign;
use inpg_workloads::CsGroup;

/// Reads the workload scale from `INPG_SCALE`, falling back to
/// `default_scale`.
pub fn scale_from_env(default_scale: f64) -> f64 {
    std::env::var("INPG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(default_scale)
}

/// Workload seeds to average over, from `INPG_SEEDS` (default 1).
pub fn seeds_from_env() -> Vec<u64> {
    let n: u64 = std::env::var("INPG_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    (0..n).map(|i| 0x1a9e_4711 + i * 0x9e37).collect()
}

/// Runs a figure's campaign with the standard harness options
/// (`INPG_WORKERS` workers, resumable cache under `results/cache`,
/// progress on stderr) and panics — with the offending cell labels — if
/// anything fails or hits its cycle bound. The happy path of every
/// `fig*` binary.
pub fn figure_report(campaign: &Campaign) -> CampaignReport {
    let report = execute(campaign, &ExecOptions::for_figures())
        .unwrap_or_else(|e| panic!("campaign {}: {e}", campaign.name));
    let incomplete = report.incomplete();
    assert!(
        incomplete.is_empty(),
        "campaign {}: cells hit the cycle bound: {}",
        campaign.name,
        incomplete.join(", ")
    );
    eprintln!("{}", report.summary_line());
    report
}

/// Geometric mean of a nonempty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a nonempty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

struct MatrixRow {
    name: String,
    group: Option<CsGroup>,
    values: Vec<f64>,
}

/// The table shape shared by the evaluation figures: one row per
/// benchmark (optionally tagged with its CS-time group), one numeric
/// column per series, plus the per-group and overall summary and the
/// per-column extremes the binaries report.
pub struct FigureMatrix {
    row_header: String,
    columns: Vec<String>,
    rows: Vec<MatrixRow>,
}

impl FigureMatrix {
    pub fn new(row_header: &str, columns: &[&str]) -> Self {
        FigureMatrix {
            row_header: row_header.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; `values` must have one entry per column.
    pub fn add_row(&mut self, name: &str, group: Option<CsGroup>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row `{name}` width");
        self.rows.push(MatrixRow { name: name.to_string(), group, values });
    }

    fn with_groups(&self) -> bool {
        self.rows.iter().any(|r| r.group.is_some())
    }

    /// The main per-row table, every value rendered with `fmt`.
    pub fn main_table(&self, fmt: impl Fn(f64) -> String) -> Table {
        let mut headers = vec![self.row_header.as_str()];
        if self.with_groups() {
            headers.push("group");
        }
        headers.extend(self.columns.iter().map(String::as_str));
        let mut table = Table::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.name.clone()];
            if self.with_groups() {
                cells.push(row.group.map(|g| g.to_string()).unwrap_or_default());
            }
            cells.extend(row.values.iter().map(|&v| fmt(v)));
            table.add_row(cells);
        }
        table
    }

    /// The summary table: one row per group (when rows carry groups)
    /// aggregated with `agg`, then one overall row labelled
    /// `overall_label`.
    pub fn summary_table(
        &self,
        scope_header: &str,
        agg: impl Fn(&[f64]) -> f64,
        fmt: impl Fn(f64) -> String,
        overall_label: &str,
    ) -> Table {
        let mut headers = vec![scope_header];
        headers.extend(self.columns.iter().map(String::as_str));
        let mut table = Table::new(headers);
        if self.with_groups() {
            for group in [CsGroup::Low, CsGroup::Medium, CsGroup::High] {
                let members: Vec<&MatrixRow> =
                    self.rows.iter().filter(|r| r.group == Some(group)).collect();
                if members.is_empty() {
                    continue;
                }
                let mut cells = vec![group.to_string()];
                for col in 0..self.columns.len() {
                    let values: Vec<f64> =
                        members.iter().map(|r| r.values[col]).collect();
                    cells.push(fmt(agg(&values)));
                }
                table.add_row(cells);
            }
        }
        let mut cells = vec![overall_label.to_string()];
        for col in 0..self.columns.len() {
            cells.push(fmt(agg(&self.column(col))));
        }
        table.add_row(cells);
        table
    }

    /// All values of one column, row order.
    pub fn column(&self, col: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r.values[col]).collect()
    }

    /// The maximum of a column and the row that attains it.
    pub fn column_max(&self, col: usize) -> (f64, &str) {
        self.rows
            .iter()
            .map(|r| (r.values[col], r.name.as_str()))
            .fold((f64::MIN, ""), |acc, v| if v.0 > acc.0 { v } else { acc })
    }

    /// Aggregates one column with `agg`.
    pub fn column_agg(&self, col: usize, agg: impl Fn(&[f64]) -> f64) -> f64 {
        agg(&self.column(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_summarizes_per_group_and_overall() {
        let mut m = FigureMatrix::new("benchmark", &["a", "b"]);
        m.add_row("x", Some(CsGroup::Low), vec![1.0, 2.0]);
        m.add_row("y", Some(CsGroup::High), vec![3.0, 4.0]);
        m.add_row("z", Some(CsGroup::High), vec![5.0, 6.0]);

        let main = m.main_table(|v| format!("{v:.1}"));
        assert_eq!(main.len(), 3);

        let summary = m.summary_table("scope", mean, |v| format!("{v:.1}"), "all");
        // Low, High, overall (Medium has no members).
        assert_eq!(summary.len(), 3);

        assert_eq!(m.column(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.column_max(0), (5.0, "z"));
        assert!((m.column_agg(0, mean) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_without_groups_has_no_group_column() {
        let mut m = FigureMatrix::new("r", &["only"]);
        m.add_row("x", None, vec![1.0]);
        let summary = m.summary_table("scope", mean, |v| format!("{v}"), "all");
        assert_eq!(summary.len(), 1, "just the overall row");
    }
}
