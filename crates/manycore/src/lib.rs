//! Full-system model for the iNPG reproduction: ties the mesh NoC, the
//! MOESI coherence hierarchy, the lock primitives and a simple in-order
//! core/OS model into one cycle-driven machine matching the paper's
//! Table-1 platform.
//!
//! # Example
//!
//! ```
//! use inpg_manycore::{LockPlacement, SystemConfig, System, ThreadProgram};
//! use inpg_noc::NocConfig;
//! use inpg_sim::LockId;
//!
//! // A 4x4 mesh where every thread runs one tiny critical section.
//! let mut cfg = SystemConfig::baseline();
//! cfg.noc = NocConfig { width: 4, height: 4, ..NocConfig::baseline() };
//! let programs = (0..16)
//!     .map(|_| ThreadProgram::new().compute(50).critical(LockId::new(0), 20))
//!     .collect();
//! let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved)?;
//! let result = system.run();
//! assert!(result.completed);
//! assert_eq!(system.cs_completed(), 16);
//! # Ok::<(), inpg_sim::ConfigError>(())
//! ```

pub mod config;
mod core_model;
pub mod error;
pub mod program;
pub mod system;

pub use config::SystemConfig;
pub use error::{InvariantViolation, SimError, StallReport};
pub use program::{Segment, ThreadProgram};
pub use system::{LockPlacement, RunResult, System};
