//! Typed simulation errors: configuration problems, watchdog stalls, and
//! protocol invariant violations.
//!
//! [`System::run_checked`](crate::System::run_checked) returns these
//! instead of silently spinning to `max_cycles` when the machine wedges,
//! so a coherence bug (say, a lost `InvAck`) surfaces as a structured
//! report naming the culprit line and cycle rather than as a hung run.

use inpg_coherence::CoherenceError;
use inpg_noc::NocViolation;
use inpg_sim::{Addr, ConfigError, CoreId, Cycle};
use std::fmt;

/// A forward-progress stall detected by the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: Cycle,
    /// The configured stall window, in cycles.
    pub window: u64,
    /// The progress metric (flit hops + deliveries + completed critical
    /// sections) frozen since the window began.
    pub progress: u64,
    /// Multi-line machine state: per-core/L1/home status, per-router
    /// buffer occupancy and credits, live barrier entries, and the oldest
    /// in-flight packet's position.
    pub detail: String,
    /// Recovery retransmissions fired before the stall (0 with recovery
    /// off — a watchdog abort under recovery-on means the retry budget
    /// or timeout did not cover the injected fault).
    pub retransmits: u64,
    /// Retransmission timeouts that had already hit the backoff ceiling.
    pub backoff_ceiling_hits: u64,
    /// Big routers permanently degraded to pass-through.
    pub routers_pass_through: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall: no forward progress for {} cycles (progress metric stuck at {} since \
             cycle {})",
            self.window,
            self.progress,
            self.cycle.as_u64().saturating_sub(self.window),
        )?;
        writeln!(
            f,
            "recovery: {} retransmit(s), {} backoff ceiling hit(s), {} router(s) in \
             pass-through",
            self.retransmits, self.backoff_ceiling_hits, self.routers_pass_through,
        )?;
        write!(f, "{}", self.detail.trim_end())
    }
}

/// A protocol invariant the checker found broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A network-level invariant failed (packet conservation, buffer or
    /// credit accounting, barrier TTL bounds).
    Noc {
        /// Cycle of the check.
        cycle: Cycle,
        /// The underlying network violation.
        violation: NocViolation,
    },
    /// More than one L1 holds `addr` in a writable (M/E) state.
    MultipleOwners {
        /// Cycle of the check.
        cycle: Cycle,
        /// The multiply-owned block address.
        addr: Addr,
        /// Every core holding the block in M or E.
        owners: Vec<CoreId>,
    },
    /// The system is quiescent yet a core is still waiting for
    /// invalidation acknowledgements that can no longer arrive — the
    /// signature of a dropped or mis-relayed `InvAck`.
    AckConservation {
        /// Cycle of the check.
        cycle: Cycle,
        /// The waiting core.
        core: CoreId,
        /// The contended block address.
        addr: Addr,
        /// Acknowledgements the home told the core to expect.
        expected: u16,
        /// Acknowledgements actually collected.
        received: u16,
        /// Cycle the stalled transaction was issued.
        issued_at: Cycle,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Noc { cycle, violation } => {
                write!(f, "cycle {}: {violation}", cycle.as_u64())
            }
            InvariantViolation::MultipleOwners { cycle, addr, owners } => {
                write!(
                    f,
                    "cycle {}: SWMR violated at {addr}: cores {owners:?} all hold the \
                     block in a writable state",
                    cycle.as_u64()
                )
            }
            InvariantViolation::AckConservation {
                cycle,
                core,
                addr,
                expected,
                received,
                issued_at,
            } => {
                write!(
                    f,
                    "cycle {}: ack conservation violated: {core} has waited since cycle {} \
                     for invalidation acks on {addr} ({received}/{expected} collected) \
                     with the network and all homes idle — an InvAck was lost",
                    cycle.as_u64(),
                    issued_at.as_u64()
                )
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Any way a checked simulation run can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration was rejected before the run started.
    Config(ConfigError),
    /// The watchdog detected a forward-progress stall.
    Stall(StallReport),
    /// The invariant checker caught a protocol violation.
    Invariant(InvariantViolation),
    /// A pure protocol state machine rejected a delivered message — a
    /// lost, duplicated or misrouted packet upstream.
    Protocol {
        /// Cycle the offending message was processed.
        cycle: Cycle,
        /// The violation raised by the L1 or home step function.
        error: CoherenceError,
    },
    /// The harness raised the run's [`inpg_sim::AbortHandle`] — a
    /// deadline passed or a shutdown began — and the simulator wound
    /// down cooperatively at its next abort-poll point. Not a protocol
    /// failure: the machine was healthy, the caller stopped waiting.
    Aborted {
        /// Cycle at which the abort was observed.
        cycle: Cycle,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {}", e.message()),
            SimError::Stall(report) => write!(f, "{report}"),
            SimError::Invariant(v) => write!(f, "invariant violation: {v}"),
            SimError::Protocol { cycle, error } => {
                write!(f, "cycle {}: protocol violation: {error}", cycle.as_u64())
            }
            SimError::Aborted { cycle } => {
                write!(f, "aborted by the harness at cycle {}", cycle.as_u64())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_report_names_window_and_cycle() {
        let report = StallReport {
            cycle: Cycle::new(30_000),
            window: 10_000,
            progress: 421,
            detail: "core 5: spinning\n".into(),
            retransmits: 3,
            backoff_ceiling_hits: 1,
            routers_pass_through: 2,
        };
        let text = report.to_string();
        assert!(text.contains("10000 cycles"), "{text}");
        assert!(text.contains("stuck at 421"), "{text}");
        assert!(text.contains("core 5: spinning"), "{text}");
        assert!(text.contains("3 retransmit(s)"), "{text}");
        assert!(text.contains("1 backoff ceiling hit(s)"), "{text}");
        assert!(text.contains("2 router(s) in pass-through"), "{text}");
    }

    #[test]
    fn ack_conservation_names_culprits() {
        let v = InvariantViolation::AckConservation {
            cycle: Cycle::new(5_000),
            core: CoreId::new(7),
            addr: Addr::new(0x80),
            expected: 3,
            received: 2,
            issued_at: Cycle::new(1_200),
        };
        let text = v.to_string();
        assert!(text.contains("cycle 5000"), "{text}");
        assert!(text.contains("2/3"), "{text}");
        assert!(text.contains("InvAck was lost"), "{text}");
    }

    #[test]
    fn sim_error_wraps_config_error() {
        let err: SimError = ConfigError::new("bad mesh").into();
        assert!(err.to_string().contains("bad mesh"));
    }

    #[test]
    fn aborted_names_the_cycle() {
        let err = SimError::Aborted { cycle: Cycle::new(4096) };
        assert!(err.to_string().contains("aborted"), "{err}");
        assert!(err.to_string().contains("4096"), "{err}");
    }
}
