//! Thread programs: the per-thread work descriptions the system executes.

use inpg_sim::LockId;

/// One phase of a thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Parallel computation for this many cycles (no shared data).
    Compute(u64),
    /// Enter the critical section guarded by `lock` and hold it for
    /// `cs_cycles` of work.
    Critical {
        /// The guarding lock.
        lock: LockId,
        /// Cycles of work inside the critical section.
        cs_cycles: u64,
    },
}

/// The whole life of one thread, as a sequence of segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadProgram {
    segments: Vec<Segment>,
}

impl ThreadProgram {
    /// Creates an empty program (the thread finishes immediately).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: appends a parallel compute segment.
    #[must_use]
    pub fn compute(mut self, cycles: u64) -> Self {
        self.segments.push(Segment::Compute(cycles));
        self
    }

    /// Builder: appends a critical section.
    #[must_use]
    pub fn critical(mut self, lock: LockId, cs_cycles: u64) -> Self {
        self.segments.push(Segment::Critical { lock, cs_cycles });
        self
    }

    /// Builder: appends `n` repetitions of compute-then-critical.
    #[must_use]
    pub fn rounds(mut self, n: usize, compute: u64, lock: LockId, cs_cycles: u64) -> Self {
        for _ in 0..n {
            self.segments.push(Segment::Compute(compute));
            self.segments.push(Segment::Critical { lock, cs_cycles });
        }
        self
    }

    /// The segments in execution order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of critical sections in the program.
    pub fn cs_count(&self) -> usize {
        self.segments.iter().filter(|s| matches!(s, Segment::Critical { .. })).count()
    }

    /// Total parallel compute cycles in the program.
    pub fn compute_cycles(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Compute(c) => *c,
                Segment::Critical { .. } => 0,
            })
            .sum()
    }

    /// Highest lock id referenced, if any.
    pub fn max_lock(&self) -> Option<LockId> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Critical { lock, .. } => Some(*lock),
                Segment::Compute(_) => None,
            })
            .max()
    }
}

impl FromIterator<Segment> for ThreadProgram {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        ThreadProgram { segments: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let p = ThreadProgram::new()
            .compute(100)
            .critical(LockId::new(0), 50)
            .rounds(2, 10, LockId::new(1), 5);
        assert_eq!(p.segments().len(), 6);
        assert_eq!(p.cs_count(), 3);
        assert_eq!(p.compute_cycles(), 120);
        assert_eq!(p.max_lock(), Some(LockId::new(1)));
    }

    #[test]
    fn empty_program() {
        let p = ThreadProgram::new();
        assert_eq!(p.cs_count(), 0);
        assert_eq!(p.max_lock(), None);
        assert_eq!(p.compute_cycles(), 0);
    }

    #[test]
    fn from_iterator() {
        let p: ThreadProgram =
            [Segment::Compute(5), Segment::Critical { lock: LockId::new(0), cs_cycles: 3 }]
                .into_iter()
                .collect();
        assert_eq!(p.cs_count(), 1);
    }
}
