//! The complete many-core system: cores + L1s + distributed L2/directory
//! + mesh NoC, glued together and ticked cycle by cycle.

use crate::config::SystemConfig;
use crate::core_model::{CoreModel, CoreParams};
use crate::error::{InvariantViolation, SimError, StallReport};
use crate::program::ThreadProgram;
use inpg_coherence::{CoherenceMsg, Envelope, HomeBank, HomeMap, InvAckRoundTrips, L1Cache};
use inpg_locks::{LockHandle, LockLayout, LockPrimitive};
use inpg_noc::{Message, Network, NocStats};
use inpg_sim::{Addr, ConfigError, CoreId, Cycle, LockId, Watchdog};
use inpg_stats::{PhaseCounters, Timeline};
use std::collections::BTreeMap;

/// Where a lock's primary (contended) word should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPlacement {
    /// Spread primary words round-robin over the banks (default).
    #[default]
    Interleaved,
    /// Home the primary word at a specific tile (e.g. the paper homes
    /// the Figure-10 lock at tile (5, 6)).
    At(CoreId),
}

/// Outcome of a [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Whether every thread finished its program.
    pub completed: bool,
}

/// The full simulated machine.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    network: Network<CoherenceMsg>,
    l1s: Vec<L1Cache>,
    homes: Vec<HomeBank>,
    cores: Vec<CoreModel>,
    home_map: HomeMap,
    timeline: Option<Timeline>,
    lock_layouts: Vec<LockLayout>,
    now: Cycle,
    outbox: Vec<Envelope>,
    /// Core whose delivered packets are logged to stderr
    /// (`INPG_TRACE_CORE`, debugging aid; read once at construction).
    trace_core: Option<usize>,
    /// Cooperative abort flag installed by the harness (deadline or
    /// shutdown); polled coarsely inside [`run_checked`](Self::run_checked).
    /// Lives on the system, not the config: [`SystemConfig`] is pure
    /// comparable data, while this is shared runtime state.
    abort: Option<inpg_sim::AbortHandle>,
}

impl System {
    /// Builds a system running one `program` per core, with `num_locks`
    /// lock instances placed per `placement`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid, a
    /// program references a lock outside `0..num_locks`, or the program
    /// count does not equal the core count.
    pub fn new(
        cfg: SystemConfig,
        programs: Vec<ThreadProgram>,
        num_locks: usize,
        placement: LockPlacement,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cores = cfg.cores();
        if programs.len() != cores {
            return Err(ConfigError::new(format!(
                "expected {cores} programs (one per core), got {}",
                programs.len()
            )));
        }
        for (t, p) in programs.iter().enumerate() {
            if let Some(max) = p.max_lock() {
                if max.index() >= num_locks {
                    return Err(ConfigError::new(format!(
                        "thread {t} references {max} but only {num_locks} lock(s) exist"
                    )));
                }
            }
        }

        let home_map = HomeMap::new(cores);
        let mut homes: Vec<HomeBank> =
            (0..cores).map(|c| HomeBank::new(CoreId::new(c), cores, cfg.l2_latency)).collect();
        let mut l1s: Vec<L1Cache> =
            (0..cores).map(|c| L1Cache::new(CoreId::new(c), home_map, cfg.l1_hit_latency)).collect();
        if cfg.recover {
            for l1 in &mut l1s {
                l1.enable_recovery(cfg.recovery_timeout, cfg.recovery_retry_budget);
            }
        }

        // Allocate lock layouts: the primary word per `placement`, the
        // auxiliary words (queue slots, per-thread nodes) interleaved
        // over all banks. `slot_counters[bank]` tracks distinct blocks.
        let mut slot_counters = vec![0u64; cores];
        let mut alloc_at = |bank: usize| -> Addr {
            let addr = home_map.addr_homed_at(CoreId::new(bank), slot_counters[bank]);
            slot_counters[bank] += 1;
            addr
        };
        let mut lock_layouts = Vec::with_capacity(num_locks);
        let mut aux_rr = 0usize;
        for lock in 0..num_locks {
            let primary_bank = match placement {
                LockPlacement::Interleaved => lock % cores,
                LockPlacement::At(core) => {
                    if core.index() >= cores {
                        return Err(ConfigError::new("lock placement outside the mesh"));
                    }
                    core.index()
                }
            };
            let words_needed = LockLayout::words_needed(cfg.primitive, cores);
            let mut words = Vec::with_capacity(words_needed);
            words.push(alloc_at(primary_bank));
            for _ in 1..words_needed {
                words.push(alloc_at(aux_rr % cores));
                aux_rr += 1;
            }
            let layout = LockLayout::new(cfg.primitive, cores, words);
            for (addr, value) in layout.initial_values() {
                homes[home_map.home_of(addr).index()].init_block(addr, value);
            }
            lock_layouts.push(layout);
        }

        let params = CoreParams {
            sleep_entry_cycles: cfg.sleep_entry_cycles,
            wakeup_cycles: cfg.wakeup_cycles,
            ocor: cfg.ocor,
            retry_budget: cfg.retry_budget,
        };
        let core_models: Vec<CoreModel> = programs
            .into_iter()
            .enumerate()
            .map(|(c, program)| {
                let handles: Vec<LockHandle> = lock_layouts
                    .iter()
                    .map(|layout| {
                        LockHandle::with_retry_budget(layout.clone(), c, cfg.retry_budget)
                    })
                    .collect();
                CoreModel::new(CoreId::new(c), program, handles, params)
            })
            .collect();

        let timeline = cfg.record_timeline.then(|| Timeline::new(cores));
        let network = Network::new(cfg.noc.clone())?;
        Ok(System {
            cfg,
            network,
            l1s,
            homes,
            cores: core_models,
            home_map,
            timeline,
            lock_layouts,
            now: Cycle::ZERO,
            outbox: Vec::new(),
            trace_core: std::env::var("INPG_TRACE_CORE").ok().and_then(|v| v.parse().ok()),
            abort: None,
        })
    }

    /// Installs a cooperative abort flag. When another thread raises
    /// it, [`run_checked`](Self::run_checked) winds down with
    /// [`SimError::Aborted`] at its next poll point (every 1024 cycles).
    /// A run that completes before the flag is raised is byte-identical
    /// to one executed without a handle — the simulator only ever reads
    /// the flag, never a clock.
    pub fn set_abort(&mut self, handle: inpg_sim::AbortHandle) {
        self.abort = Some(handle);
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The primary (contended) word address of lock `lock`.
    pub fn lock_primary(&self, lock: LockId) -> Addr {
        self.lock_layouts[lock.index()].primary()
    }

    /// Whether every thread has finished.
    pub fn all_done(&self) -> bool {
        self.cores.iter().all(CoreModel::is_done)
    }

    /// Advances the machine one cycle.
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation; the checked run path uses
    /// [`try_tick`](Self::try_tick) and surfaces it as a
    /// [`SimError::Protocol`] instead.
    pub fn tick(&mut self) {
        if let Err(e) = self.try_tick() {
            panic!("{e}");
        }
    }

    /// Advances the machine one cycle, surfacing protocol violations
    /// (a pure L1 or home step function rejecting a delivered message)
    /// as typed errors.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] naming the violation and the cycle.
    pub fn try_tick(&mut self) -> Result<(), SimError> {
        let now = self.now;
        let cores = self.cfg.cores();

        // 1. The network moves flits and delivers packets.
        self.network.tick(now);

        // 2. Dispatch delivered packets to L1s / home banks / OS.
        for c in 0..cores {
            while let Some(packet) = self.network.pop_delivered(CoreId::new(c)) {
                if self.trace_core == Some(c) {
                    eprintln!("[{}] core {c} <- {:?} (monitored {:?})", now.as_u64(), packet.payload, self.cores[c].monitored_block());
                }
                match packet.payload {
                    CoherenceMsg::GetS { .. }
                    | CoherenceMsg::GetX { .. }
                    | CoherenceMsg::RelayedGetX { .. }
                    | CoherenceMsg::RelayedInvAck { .. }
                    | CoherenceMsg::UnblockS { .. }
                    | CoherenceMsg::UnblockX { .. } => {
                        self.homes[c].handle(packet.payload, now);
                    }
                    CoherenceMsg::OsWakeup { .. } => {
                        self.cores[c].on_wakeup_ipi(now);
                    }
                    msg @ (CoherenceMsg::FwdGetS { .. }
                    | CoherenceMsg::FwdGetX { .. }
                    | CoherenceMsg::Inv { .. }
                    | CoherenceMsg::Data { .. }
                    | CoherenceMsg::AckCount { .. }
                    | CoherenceMsg::InvAck { .. }
                    | CoherenceMsg::EarlyInvAck { .. }) => {
                        // MWAIT-style wake: losing the monitored line —
                        // by invalidation or by an exclusive-ownership
                        // transfer — wakes the sleeping thread (the word
                        // is being, or is about to be, written).
                        let lost = if let CoherenceMsg::Inv { addr, .. }
                        | CoherenceMsg::FwdGetX { addr, .. } = &msg
                        {
                            Some(addr.block())
                        } else {
                            None
                        };
                        if lost.is_some() && self.cores[c].monitored_block() == lost {
                            self.cores[c].on_wakeup_ipi(now);
                        }
                        let mut outbox = std::mem::take(&mut self.outbox);
                        let handled = self.l1s[c].try_handle(msg, now, &mut outbox);
                        self.flush(c, outbox);
                        handled.map_err(|error| SimError::Protocol { cycle: now, error })?;
                    }
                }
            }
        }

        // 3. Home banks process one request each.
        for c in 0..cores {
            let mut outbox = std::mem::take(&mut self.outbox);
            let ticked = self.homes[c].try_tick(now, &mut outbox);
            self.flush(c, outbox);
            ticked.map_err(|error| SimError::Protocol { cycle: now, error })?;
        }

        // 4. L1 timers.
        for l1 in &mut self.l1s {
            l1.tick(now);
        }

        // 4b. Recovery retransmission timers: a due timer aborts the
        // wedged exclusive transaction and reissues it under a fresh
        // sequence number.
        if self.cfg.recover {
            for c in 0..cores {
                if self.l1s[c].recovery_due(now) {
                    let mut outbox = std::mem::take(&mut self.outbox);
                    self.l1s[c].fire_recovery(now, &mut outbox);
                    self.flush(c, outbox);
                }
            }
        }

        // 5. Cores execute.
        for c in 0..cores {
            let mut outbox = std::mem::take(&mut self.outbox);
            self.cores[c].tick(now, &mut self.l1s[c], &mut outbox, self.timeline.as_mut());
            self.flush(c, outbox);
        }

        self.now = now.next();
        Ok(())
    }

    /// Sends every envelope produced by tile `c`, reusing the buffer.
    fn flush(&mut self, c: usize, mut outbox: Vec<Envelope>) {
        for env in outbox.drain(..) {
            let flits = env.msg.flits();
            let vnet = env.msg.vnet();
            self.network.send(
                self.now,
                Message {
                    src: CoreId::new(c),
                    dst: env.dst,
                    sink: env.sink,
                    vnet,
                    flits,
                    priority: env.priority,
                    payload: env.msg,
                },
            );
        }
        self.outbox = outbox;
    }

    /// Runs until every thread finishes or `max_cycles` elapse.
    pub fn run(&mut self) -> RunResult {
        while !self.all_done() && self.now.as_u64() < self.cfg.max_cycles {
            self.tick();
        }
        RunResult { cycles: self.now.as_u64(), completed: self.all_done() }
    }

    /// Runs for exactly `cycles` more cycles (or until done).
    pub fn run_for(&mut self, cycles: u64) -> RunResult {
        let end = self.now.as_u64() + cycles;
        while !self.all_done() && self.now.as_u64() < end {
            self.tick();
        }
        RunResult { cycles: self.now.as_u64(), completed: self.all_done() }
    }

    /// Runs like [`run`](Self::run) but with the robustness subsystem
    /// armed per the configuration: the forward-progress watchdog
    /// ([`SystemConfig::watchdog_cycles`]) aborts a wedged run with a
    /// structured [`StallReport`], and the protocol invariant checker
    /// ([`SystemConfig::invariant_check_interval`]) aborts on the first
    /// [`InvariantViolation`] naming the culprit line and cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stall`] when the progress metric freezes for a
    /// full watchdog window, [`SimError::Invariant`] when a periodic
    /// check finds the machine in an impossible state, and
    /// [`SimError::Aborted`] when an installed
    /// [abort handle](Self::set_abort) is raised mid-run.
    pub fn run_checked(&mut self) -> Result<RunResult, SimError> {
        let mut watchdog = self.cfg.watchdog_cycles.map(Watchdog::new);
        let interval = self.cfg.invariant_check_interval;
        while !self.all_done() && self.now.as_u64() < self.cfg.max_cycles {
            if self.now.as_u64() & 0x3ff == 0 {
                if let Some(abort) = &self.abort {
                    if abort.is_aborted() {
                        return Err(SimError::Aborted { cycle: self.now });
                    }
                }
            }
            self.try_tick()?;
            if let Some(dog) = watchdog.as_mut() {
                if dog.observe(self.now, self.progress_metric()) {
                    return Err(SimError::Stall(self.stall_report(dog.window())));
                }
            }
            if let Some(k) = interval {
                if self.now.as_u64().is_multiple_of(k) {
                    self.check_protocol_invariants().map_err(SimError::Invariant)?;
                }
            }
        }
        Ok(RunResult { cycles: self.now.as_u64(), completed: self.all_done() })
    }

    /// The watchdog's forward-progress metric: any flit moving, any
    /// packet arriving, or any critical section completing counts.
    /// Monotonically non-decreasing; a frozen value means the machine is
    /// wedged (quiet sleep phases are bounded by the sleep/wakeup
    /// context-switch costs, well under any sane watchdog window).
    pub fn progress_metric(&self) -> u64 {
        let noc = self.network.stats();
        noc.flit_hops + noc.delivered + noc.consumed + self.cs_completed() as u64
    }

    /// Builds the structured stall report the watchdog attaches to
    /// [`SimError::Stall`]: unfinished cores with their L1 transactions,
    /// busy home banks, per-router buffer/credit occupancy, live barrier
    /// entries, and the oldest in-flight packet's position.
    pub fn stall_report(&self, window: u64) -> StallReport {
        let mut detail = self.stuck_report();
        detail.push_str(&self.network.congestion_report(self.now));
        let l1 = self.l1_stats();
        StallReport {
            cycle: self.now,
            window,
            progress: self.progress_metric(),
            detail,
            retransmits: l1.retransmits,
            backoff_ceiling_hits: l1.backoff_ceiling_hits,
            routers_pass_through: self.network.barrier_stats().in_pass_through,
        }
    }

    /// Checks protocol-level invariants, returning the first violation.
    ///
    /// Checked here (beyond the network-level conservation checks):
    ///
    /// * **Single-writer** — at most one L1 holds any block in a
    ///   writable (M/E) state;
    /// * **Ack conservation at quiescence** — with nothing in flight and
    ///   every home bank idle, no core may still be short of promised
    ///   invalidation acknowledgements (a lost `InvAck` wedges the
    ///   winner forever, the failure mode iNPG's ack relaying must
    ///   avoid).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found, naming the cycle
    /// and the culprit block/cores.
    pub fn check_protocol_invariants(&self) -> Result<(), InvariantViolation> {
        let now = self.now;
        self.network
            .try_check_invariants()
            .map_err(|violation| InvariantViolation::Noc { cycle: now, violation })?;

        let mut owners: BTreeMap<Addr, Vec<CoreId>> = BTreeMap::new();
        for l1 in &self.l1s {
            for (addr, state) in l1.lines_snapshot() {
                if matches!(state, "M" | "E") {
                    owners.entry(addr).or_default().push(l1.core());
                }
            }
        }
        for (addr, mut owners) in owners {
            if owners.len() > 1 {
                owners.sort();
                return Err(InvariantViolation::MultipleOwners { cycle: now, addr, owners });
            }
        }

        // Quiescence-aware: envelopes are flushed into the network within
        // the tick that produces them, L1s acknowledge invalidations in
        // the same tick they receive them, and L1 timers cannot emit
        // messages — so once the network is empty and no home bank holds
        // an undelivered message, no missing acknowledgement can ever
        // arrive. (Home entries may legitimately sit busy behind the
        // wedged transaction itself, so busy entries don't gate this.)
        // A pending recovery timer means a retransmission is scheduled:
        // the "missing" acks will be re-solicited, so quiescence-based
        // ack conservation does not apply yet.
        if self.network.in_flight() == 0
            && !self.homes.iter().any(HomeBank::messages_pending)
            && !self.l1s.iter().any(L1Cache::recovery_pending)
        {
            for l1 in &self.l1s {
                if let Some((addr, expected, received, issued_at)) = l1.pending_ack_wait() {
                    return Err(InvariantViolation::AckConservation {
                        cycle: now,
                        core: l1.core(),
                        addr,
                        expected,
                        received,
                        issued_at,
                    });
                }
            }
        }
        Ok(())
    }

    /// Multi-line report of anything unfinished, for debugging stuck
    /// runs (incomplete [`RunResult`]s).
    pub fn stuck_report(&self) -> String {
        let mut out = String::new();
        for (c, core) in self.cores.iter().enumerate() {
            if !core.is_done() {
                out.push_str(&format!("core {c}: {}\n", core.state_line()));
                if let Some(p) = self.l1s[c].pending_report() {
                    out.push_str(&format!("  l1 pending: {p}\n"));
                }
            }
        }
        for (c, home) in self.homes.iter().enumerate() {
            for line in home.busy_report() {
                out.push_str(&format!("home {c}: {line}\n"));
            }
        }
        out.push_str(&format!("noc in flight: {}\n", self.network.in_flight()));
        out
    }

    /// Directory view of `addr` at its home bank (diagnostics).
    pub fn dir_report_for(&self, addr: Addr) -> String {
        self.homes[self.home_map.home_of(addr).index()].dir_report(addr)
    }

    /// Cached line of `addr` at `core`'s L1 (diagnostics).
    pub fn probe_line(&self, core: CoreId, addr: Addr) -> Option<(&'static str, u64)> {
        self.l1s[core.index()].probe_line(addr)
    }

    /// The authoritative value of a word once the system is quiescent:
    /// the owning L1's copy if one exists (M/E/O), else the home bank's
    /// L2 copy. Used by correctness tests to check final memory state.
    pub fn read_word(&self, addr: Addr) -> u64 {
        for l1 in &self.l1s {
            if let Some((state, value)) = l1.probe_line(addr) {
                if matches!(state, "M" | "E" | "O") {
                    return value;
                }
            }
        }
        self.homes[self.home_map.home_of(addr).index()].l2_value(addr)
    }

    // ---- measurement taps ------------------------------------------------

    /// Per-thread phase counters, finalized to `now`.
    pub fn thread_counters(&self) -> Vec<PhaseCounters> {
        self.cores.iter().map(|c| c.counters().clone()).collect()
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Finish cycle of the slowest thread (the ROI finish time), if all
    /// threads finished.
    pub fn roi_finish(&self) -> Option<Cycle> {
        self.cores.iter().map(CoreModel::finish_cycle).collect::<Option<Vec<_>>>()?.into_iter().max()
    }

    /// Total completed critical sections.
    pub fn cs_completed(&self) -> usize {
        self.cores.iter().map(|c| c.counters().cs_count()).sum()
    }

    /// Invalidation–acknowledgement round trips: direct (winner-observed)
    /// and early (router-observed, recorded at the home), merged.
    pub fn invack_roundtrips(&self) -> InvAckRoundTrips {
        let (mut direct, early) = self.invack_roundtrips_split();
        direct.merge(&early);
        direct
    }

    /// Round trips split by mechanism: `(direct, early)`. Direct trips
    /// are home-generated invalidations observed by winners; early trips
    /// are big-router invalidations closed at the relaying router.
    pub fn invack_roundtrips_split(&self) -> (InvAckRoundTrips, InvAckRoundTrips) {
        let mut direct = InvAckRoundTrips::new(self.cfg.cores(), 256);
        for l1 in &self.l1s {
            direct.merge(l1.roundtrips());
        }
        let mut early = InvAckRoundTrips::new(self.cfg.cores(), 256);
        for home in &self.homes {
            early.merge(home.roundtrips());
        }
        (direct, early)
    }

    /// Network statistics.
    pub fn noc_stats(&self) -> &NocStats {
        self.network.stats()
    }

    /// Barrier-table statistics summed over big routers.
    pub fn barrier_stats(&self) -> inpg_noc::barrier::BarrierStats {
        self.network.barrier_stats()
    }

    /// Sum of per-core lock-transaction cycles (the LCO numerator) and
    /// per-core memory transaction cycles.
    pub fn lco_cycles(&self) -> (u64, u64) {
        let lco = self.l1s.iter().map(|l| l.stats().lock_txn_cycles).sum();
        let mem = self.l1s.iter().map(|l| l.stats().mem_txn_cycles).sum();
        (lco, mem)
    }

    /// Aggregated L1 counters.
    pub fn l1_stats(&self) -> inpg_coherence::L1Stats {
        let mut total = inpg_coherence::L1Stats::default();
        for l in &self.l1s {
            let s = l.stats();
            total.loads += s.loads;
            total.stores += s.stores;
            total.hits += s.hits;
            total.misses += s.misses;
            total.getx_issued += s.getx_issued;
            total.gets_issued += s.gets_issued;
            total.invs_received += s.invs_received;
            total.lock_txn_cycles += s.lock_txn_cycles;
            total.lock_txns += s.lock_txns;
            total.mem_txn_cycles += s.mem_txn_cycles;
            total.demoted_fails += s.demoted_fails;
            total.demote_retries += s.demote_retries;
            total.forwards_bounced += s.forwards_bounced;
            total.read_miss_lat += s.read_miss_lat;
            total.read_misses += s.read_misses;
            total.write_miss_lat += s.write_miss_lat;
            total.write_misses += s.write_misses;
            total.retransmits += s.retransmits;
            total.stale_acks_dropped += s.stale_acks_dropped;
            total.dup_grants_dropped += s.dup_grants_dropped;
            total.stale_absorbed += s.stale_absorbed;
            total.backoff_ceiling_hits += s.backoff_ceiling_hits;
            total.recovery_exhausted += s.recovery_exhausted;
        }
        total
    }

    /// Aggregated home-bank counters.
    pub fn home_stats(&self) -> inpg_coherence::HomeStats {
        let mut total = inpg_coherence::HomeStats::default();
        for h in &self.homes {
            let s = h.stats();
            total.requests += s.requests;
            total.getx += s.getx;
            total.invs_sent += s.invs_sent;
            total.invs_saved_by_early += s.invs_saved_by_early;
            total.relays_forwarded += s.relays_forwarded;
            total.early_acks_consumed += s.early_acks_consumed;
            total.acks_parked += s.acks_parked;
            total.demotions += s.demotions;
            total.queue_wait_cycles += s.queue_wait_cycles;
            total.max_queue_len = total.max_queue_len.max(s.max_queue_len);
            total.dup_requests_dropped += s.dup_requests_dropped;
            total.recovery_regrants += s.recovery_regrants;
        }
        total
    }

    /// Number of threads currently descheduled in the QSL sleep path.
    pub fn sleeping_threads(&self) -> usize {
        self.cores.iter().filter(|c| c.is_asleep()).count()
    }

    /// The lock primitive in use.
    pub fn primitive(&self) -> LockPrimitive {
        self.cfg.primitive
    }

    /// The home tile of an address (testing/diagnostics).
    pub fn home_of(&self, addr: Addr) -> CoreId {
        self.home_map.home_of(addr)
    }
}
