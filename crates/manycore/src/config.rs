//! Full-system configuration.

use inpg_locks::LockPrimitive;
use inpg_noc::NocConfig;
use inpg_sim::ConfigError;

/// Configuration of the complete many-core system (Table 1 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// NoC geometry, buffering and big-router deployment.
    pub noc: NocConfig,
    /// Lock primitive used by all critical sections.
    pub primitive: LockPrimitive,
    /// QSL retry budget before sleeping (Table 1: 128).
    pub retry_budget: u32,
    /// Whether OCOR is active: lock request packets carry
    /// remaining-times-of-retry priorities and routers arbitrate by them.
    pub ocor: bool,
    /// L1 hit latency in cycles (Table 1: 2).
    pub l1_hit_latency: u64,
    /// L2 bank access latency in cycles (Table 1: 6).
    pub l2_latency: u64,
    /// Context-switch cost of entering the QSL sleep phase.
    pub sleep_entry_cycles: u64,
    /// Cost of waking a slept thread (context switch back in).
    pub wakeup_cycles: u64,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// Record a full per-thread phase timeline (Figure 9 profiles).
    pub record_timeline: bool,
}

impl SystemConfig {
    /// The paper's Table-1 platform with the default iNPG deployment.
    pub fn paper_default() -> Self {
        SystemConfig {
            noc: NocConfig::paper_default(),
            primitive: LockPrimitive::Qsl,
            retry_budget: 128,
            ocor: false,
            l1_hit_latency: 2,
            l2_latency: 6,
            sleep_entry_cycles: 1_500,
            wakeup_cycles: 2_500,
            max_cycles: 200_000_000,
            record_timeline: false,
        }
    }

    /// The Original baseline: no big routers, no OCOR.
    pub fn baseline() -> Self {
        SystemConfig { noc: NocConfig::baseline(), ..Self::paper_default() }
    }

    /// Number of cores (= mesh nodes).
    pub fn cores(&self) -> usize {
        self.noc.nodes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the NoC config is invalid or the
    /// retry budget is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.noc.validate()?;
        if self.retry_budget == 0 {
            return Err(ConfigError::new("retry budget must be nonzero"));
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::new("max_cycles must be nonzero"));
        }
        Ok(())
    }

    /// When OCOR is enabled, the NoC must arbitrate by priority; this
    /// returns the config with the two flags consistent.
    #[must_use]
    pub fn with_ocor(mut self, enabled: bool) -> Self {
        self.ocor = enabled;
        self.noc.ocor_arbitration = enabled;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SystemConfig::paper_default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.cores(), 64);
        assert_eq!(cfg.retry_budget, 128);
    }

    #[test]
    fn with_ocor_keeps_flags_consistent() {
        let cfg = SystemConfig::baseline().with_ocor(true);
        assert!(cfg.ocor);
        assert!(cfg.noc.ocor_arbitration);
        let cfg = cfg.with_ocor(false);
        assert!(!cfg.noc.ocor_arbitration);
    }

    #[test]
    fn invalid_budget_rejected() {
        let mut cfg = SystemConfig::paper_default();
        cfg.retry_budget = 0;
        assert!(cfg.validate().is_err());
    }
}
