//! Full-system configuration.

use inpg_locks::LockPrimitive;
use inpg_noc::NocConfig;
use inpg_sim::ConfigError;

/// Configuration of the complete many-core system (Table 1 defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// NoC geometry, buffering and big-router deployment.
    pub noc: NocConfig,
    /// Lock primitive used by all critical sections.
    pub primitive: LockPrimitive,
    /// QSL retry budget before sleeping (Table 1: 128).
    pub retry_budget: u32,
    /// Whether OCOR is active: lock request packets carry
    /// remaining-times-of-retry priorities and routers arbitrate by them.
    pub ocor: bool,
    /// L1 hit latency in cycles (Table 1: 2).
    pub l1_hit_latency: u64,
    /// L2 bank access latency in cycles (Table 1: 6).
    pub l2_latency: u64,
    /// Context-switch cost of entering the QSL sleep phase.
    pub sleep_entry_cycles: u64,
    /// Cost of waking a slept thread (context switch back in).
    pub wakeup_cycles: u64,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// Record a full per-thread phase timeline (Figure 9 profiles).
    pub record_timeline: bool,
    /// Forward-progress watchdog: abort with a structured stall report
    /// when no event retires for this many consecutive cycles. `None`
    /// disables the watchdog. Only honoured by
    /// [`System::run_checked`](crate::System::run_checked).
    pub watchdog_cycles: Option<u64>,
    /// Run the protocol invariant checker every this many cycles.
    /// `None` disables checking. Only honoured by
    /// [`System::run_checked`](crate::System::run_checked).
    pub invariant_check_interval: Option<u64>,
    /// Arm the fault-recovery layer: timeout-based retransmission of
    /// wedged exclusive transactions with exponential backoff, plus
    /// sequence-numbered dedup at the home nodes. Off by default so
    /// injected faults surface as aborts unless recovery is requested.
    pub recover: bool,
    /// Base retransmission timeout in cycles. Must dwarf the worst-case
    /// transaction service latency: a spurious timeout wastes a reissue
    /// and (in a corner case involving simultaneous grant and abort)
    /// can mis-count acknowledgements.
    pub recovery_timeout: u64,
    /// Retransmissions allowed per transaction before recovery gives up
    /// and lets the watchdog report the stall.
    pub recovery_retry_budget: u32,
}

impl SystemConfig {
    /// The paper's Table-1 platform with the default iNPG deployment.
    pub fn paper_default() -> Self {
        SystemConfig {
            noc: NocConfig::paper_default(),
            primitive: LockPrimitive::Qsl,
            retry_budget: 128,
            ocor: false,
            l1_hit_latency: 2,
            l2_latency: 6,
            sleep_entry_cycles: 1_500,
            wakeup_cycles: 2_500,
            max_cycles: 200_000_000,
            record_timeline: false,
            watchdog_cycles: None,
            invariant_check_interval: None,
            recover: false,
            recovery_timeout: 8_192,
            recovery_retry_budget: 8,
        }
    }

    /// The Original baseline: no big routers, no OCOR.
    pub fn baseline() -> Self {
        SystemConfig { noc: NocConfig::baseline(), ..Self::paper_default() }
    }

    /// Number of cores (= mesh nodes).
    pub fn cores(&self) -> usize {
        self.noc.nodes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the NoC config is invalid or the
    /// retry budget is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.noc.validate()?;
        if self.retry_budget == 0 {
            return Err(ConfigError::new("retry budget must be nonzero"));
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::new("max_cycles must be nonzero"));
        }
        if self.watchdog_cycles == Some(0) {
            return Err(ConfigError::new("watchdog window must be nonzero"));
        }
        if self.invariant_check_interval == Some(0) {
            return Err(ConfigError::new("invariant check interval must be nonzero"));
        }
        if self.recover {
            if self.recovery_timeout == 0 {
                return Err(ConfigError::new("recovery timeout must be nonzero"));
            }
            if self.recovery_retry_budget == 0 {
                return Err(ConfigError::new("recovery retry budget must be nonzero"));
            }
        }
        Ok(())
    }

    /// Arms (or disarms) the recovery layer (builder style).
    #[must_use]
    pub fn with_recovery(mut self, enabled: bool) -> Self {
        self.recover = enabled;
        self
    }

    /// When OCOR is enabled, the NoC must arbitrate by priority; this
    /// returns the config with the two flags consistent.
    #[must_use]
    pub fn with_ocor(mut self, enabled: bool) -> Self {
        self.ocor = enabled;
        self.noc.ocor_arbitration = enabled;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SystemConfig::paper_default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.cores(), 64);
        assert_eq!(cfg.retry_budget, 128);
    }

    #[test]
    fn with_ocor_keeps_flags_consistent() {
        let cfg = SystemConfig::baseline().with_ocor(true);
        assert!(cfg.ocor);
        assert!(cfg.noc.ocor_arbitration);
        let cfg = cfg.with_ocor(false);
        assert!(!cfg.noc.ocor_arbitration);
    }

    #[test]
    fn invalid_budget_rejected() {
        let mut cfg = SystemConfig::paper_default();
        cfg.retry_budget = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn recovery_knobs_validated_only_when_armed() {
        let mut cfg = SystemConfig::paper_default();
        cfg.recovery_timeout = 0;
        cfg.recovery_retry_budget = 0;
        assert!(cfg.validate().is_ok(), "recovery off: knobs unchecked");
        let cfg = cfg.with_recovery(true);
        assert!(cfg.validate().is_err(), "zero timeout rejected when armed");
        let mut cfg = SystemConfig::paper_default().with_recovery(true);
        assert!(cfg.validate().is_ok());
        cfg.recovery_retry_budget = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_watchdog_and_interval_rejected() {
        let mut cfg = SystemConfig::paper_default();
        cfg.watchdog_cycles = Some(0);
        assert!(cfg.validate().is_err());
        cfg.watchdog_cycles = Some(10_000);
        assert!(cfg.validate().is_ok());

        cfg.invariant_check_interval = Some(0);
        assert!(cfg.validate().is_err());
        cfg.invariant_check_interval = Some(512);
        assert!(cfg.validate().is_ok());
    }
}
