//! The per-core thread model: executes a [`ThreadProgram`], driving lock
//! state machines through the L1 cache and accounting execution phases.
//!
//! The paper's cores are out-of-order Alpha cores, but on the lock/CS
//! code path they behave like a blocking in-order engine (every spin
//! iteration depends on the previous load); the model therefore issues
//! one memory operation at a time and charges compute segments as busy
//! cycles.

use crate::program::{Segment, ThreadProgram};
use inpg_coherence::{Envelope, L1Cache};
use inpg_locks::{LockHandle, LockStep};
use inpg_sim::{CoreId, Cycle};
use inpg_stats::{CsRecord, PhaseCounters, ThreadPhase, Timeline};

/// OS/scheduling parameters the core model needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreParams {
    pub sleep_entry_cycles: u64,
    pub wakeup_cycles: u64,
    pub ocor: bool,
    pub retry_budget: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Pick the next program segment.
    Dispatch,
    /// Busy in a parallel compute segment.
    Computing { until: Cycle },
    /// A memory operation is outstanding at the L1.
    MemWait,
    /// Spin-loop pause.
    PausedUntil { until: Cycle },
    /// Context-switching into the QSL sleep phase.
    FallingAsleep { until: Cycle },
    /// Descheduled; waiting for a wakeup IPI.
    Sleeping,
    /// Context-switching back in after a wakeup.
    Waking { until: Cycle },
    /// Executing the critical-section body.
    CsBody { until: Cycle },
    /// Program finished.
    Done,
}

/// One core and the single thread pinned to it.
#[derive(Debug)]
pub(crate) struct CoreModel {
    core: CoreId,
    params: CoreParams,
    program: ThreadProgram,
    seg_idx: usize,
    state: CoreState,
    handles: Vec<LockHandle>,
    current_lock: Option<usize>,
    cs_cycles_pending: u64,
    counters: PhaseCounters,
    phase: ThreadPhase,
    phase_since: Cycle,
    coh_started: Cycle,
    cse_started: Cycle,
    sleep_started: Cycle,
    /// QSL sleep is MWAIT-style: the thread monitors its lock word and
    /// wakes when the word is invalidated (the release reaching its L1).
    monitored: Option<inpg_sim::Addr>,
    wake_pending: bool,
    woken_recently: bool,
    finish_cycle: Option<Cycle>,
}

impl CoreModel {
    pub(crate) fn new(
        core: CoreId,
        program: ThreadProgram,
        handles: Vec<LockHandle>,
        params: CoreParams,
    ) -> Self {
        CoreModel {
            core,
            params,
            program,
            seg_idx: 0,
            state: CoreState::Dispatch,
            handles,
            current_lock: None,
            cs_cycles_pending: 0,
            counters: PhaseCounters::new(),
            phase: ThreadPhase::Parallel,
            phase_since: Cycle::ZERO,
            coh_started: Cycle::ZERO,
            cse_started: Cycle::ZERO,
            sleep_started: Cycle::ZERO,
            monitored: None,
            wake_pending: false,
            woken_recently: false,
            finish_cycle: None,
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.state == CoreState::Done
    }

    pub(crate) fn finish_cycle(&self) -> Option<Cycle> {
        self.finish_cycle
    }

    pub(crate) fn counters(&self) -> &PhaseCounters {
        &self.counters
    }

    /// One-line state description for stuck-run diagnostics.
    pub(crate) fn state_line(&self) -> String {
        let handle = self.current_lock.map(|l| format!("{:?}", self.handles[l]));
        format!(
            "{:?} seg {}/{} lock {:?} wake_pending {} handle {:?}",
            self.state,
            self.seg_idx,
            self.program.segments().len(),
            self.current_lock,
            self.wake_pending,
            handle
        )
    }

    /// Whether the thread is descheduled (any stage of the sleep path).
    pub(crate) fn is_asleep(&self) -> bool {
        matches!(
            self.state,
            CoreState::FallingAsleep { .. } | CoreState::Sleeping | CoreState::Waking { .. }
        )
    }

    fn set_phase(&mut self, now: Cycle, phase: ThreadPhase, timeline: Option<&mut Timeline>) {
        if phase == self.phase {
            return;
        }
        self.counters.add(self.phase, now.saturating_since(self.phase_since));
        self.phase_since = now;
        self.phase = phase;
        if let Some(tl) = timeline {
            tl.set_phase(self.core.index(), now, phase);
        }
    }

    /// The lock word this thread monitors while in the sleep path.
    pub(crate) fn monitored_block(&self) -> Option<inpg_sim::Addr> {
        self.monitored
    }

    /// Delivers a wakeup (IPI or monitored-word invalidation).
    pub(crate) fn on_wakeup_ipi(&mut self, now: Cycle) {
        match self.state {
            CoreState::Sleeping => {
                self.monitored = None;
                self.state = CoreState::Waking { until: now + self.params.wakeup_cycles };
            }
            // Not (fully) asleep yet: leave a futex-style token so the
            // wakeup cannot be lost.
            _ => self.wake_pending = true,
        }
    }

    /// One simulation cycle: reacts to finished memory operations and
    /// elapsed timers.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        l1: &mut L1Cache,
        out: &mut Vec<Envelope>,
        mut timeline: Option<&mut Timeline>,
    ) {
        if self.state == CoreState::MemWait {
            if let Some(completion) = l1.take_completion() {
                // lint: allow(unwrap) — only drive_lock enters MemWait, and it
                // requires current_lock; the lock clears only after release.
                let lock = self.current_lock.expect("MemWait implies an active lock");
                self.handles[lock].on_result(completion.value);
                self.drive_lock(now, l1, out, timeline.as_deref_mut());
            }
            return;
        }
        loop {
            match self.state {
                CoreState::Dispatch => {
                    if !self.dispatch(now, l1, out, timeline.as_deref_mut()) {
                        return;
                    }
                }
                CoreState::Computing { until } if now >= until => {
                    self.seg_idx += 1;
                    self.state = CoreState::Dispatch;
                }
                CoreState::PausedUntil { until } if now >= until => {
                    self.drive_lock(now, l1, out, timeline.as_deref_mut());
                    return;
                }
                CoreState::FallingAsleep { until } if now >= until => {
                    if self.wake_pending {
                        self.wake_pending = false;
                        self.state =
                            CoreState::Waking { until: now + self.params.wakeup_cycles };
                    } else {
                        self.state = CoreState::Sleeping;
                        return;
                    }
                }
                CoreState::Waking { until } if now >= until => {
                    self.counters.sleep_cycles += now.saturating_since(self.sleep_started);
                    self.monitored = None;
                    self.woken_recently = true;
                    // lint: allow(unwrap) — cores only sleep inside an
                    // acquire, which keeps current_lock set.
                    let lock = self.current_lock.expect("waking implies an active lock");
                    self.handles[lock].on_wakeup();
                    self.drive_lock(now, l1, out, timeline.as_deref_mut());
                    return;
                }
                CoreState::CsBody { until } if now >= until => {
                    // The release protocol is part of the CSE phase.
                    // lint: allow(unwrap) — the CS body starts from a
                    // successful acquire of current_lock.
                    let lock = self.current_lock.expect("CS body implies an active lock");
                    self.handles[lock].begin_release();
                    self.drive_lock(now, l1, out, timeline.as_deref_mut());
                    return;
                }
                _ => return,
            }
        }
    }

    /// Starts the next program segment. Returns `true` when the state
    /// machine should keep looping (zero-length segment chains).
    fn dispatch(
        &mut self,
        now: Cycle,
        l1: &mut L1Cache,
        out: &mut Vec<Envelope>,
        mut timeline: Option<&mut Timeline>,
    ) -> bool {
        match self.program.segments().get(self.seg_idx).copied() {
            None => {
                self.set_phase(now, ThreadPhase::Done, timeline.as_deref_mut());
                self.state = CoreState::Done;
                self.finish_cycle = Some(now);
                false
            }
            Some(Segment::Compute(cycles)) => {
                self.set_phase(now, ThreadPhase::Parallel, timeline.as_deref_mut());
                if cycles == 0 {
                    self.seg_idx += 1;
                    true
                } else {
                    self.state = CoreState::Computing { until: now + cycles };
                    false
                }
            }
            Some(Segment::Critical { lock, cs_cycles }) => {
                self.set_phase(now, ThreadPhase::Competition, timeline.as_deref_mut());
                self.coh_started = now;
                self.cs_cycles_pending = cs_cycles;
                self.current_lock = Some(lock.index());
                self.handles[lock.index()].begin_acquire();
                self.drive_lock(now, l1, out, timeline);
                false
            }
        }
    }

    /// Runs the active lock state machine until it blocks.
    fn drive_lock(
        &mut self,
        now: Cycle,
        l1: &mut L1Cache,
        out: &mut Vec<Envelope>,
        mut timeline: Option<&mut Timeline>,
    ) {
        // lint: allow(unwrap) — every caller sets or checks current_lock first.
        let lock = self.current_lock.expect("drive_lock without an active lock");
        loop {
            match self.handles[lock].step() {
                LockStep::Issue(op) => {
                    let priority = self.ocor_priority(lock, op.lock);
                    l1.issue_with_priority(op, priority, now, out);
                    self.state = CoreState::MemWait;
                    return;
                }
                LockStep::Pause(cycles) => {
                    self.state = CoreState::PausedUntil { until: now + cycles };
                    return;
                }
                LockStep::Sleep => {
                    let block = self.handles[lock].primary_addr().block();
                    if self.wake_pending || l1.probe_state(block) == "I" {
                        // Either a wakeup raced ahead, or the monitored
                        // line was invalidated between the final check
                        // and this instant (the lock likely changed):
                        // resume spinning instead of descheduling — a
                        // sleeper must always hold a registered shared
                        // copy so the release's invalidation reaches it.
                        self.wake_pending = false;
                        self.woken_recently = true;
                        self.handles[lock].on_wakeup();
                        continue;
                    }
                    self.sleep_started = now;
                    self.monitored = Some(block);
                    self.state = CoreState::FallingAsleep {
                        until: now + self.params.sleep_entry_cycles,
                    };
                    return;
                }
                LockStep::Notify { thread } => {
                    // Futex wake: an IPI to the successor's core. The
                    // system layer turns this into an OsWakeup message.
                    out.push(Envelope::to_core(
                        CoreId::new(thread),
                        inpg_coherence::CoherenceMsg::OsWakeup { core: CoreId::new(thread) },
                    ));
                    continue;
                }
                LockStep::Acquired => {
                    let coh = now.saturating_since(self.coh_started);
                    self.wake_pending = false;
                    self.woken_recently = false;
                    self.set_phase(now, ThreadPhase::CriticalSection, timeline.as_deref_mut());
                    self.cse_started = now;
                    // Stash the COH length until release completes.
                    self.coh_started = Cycle::new(coh); // reuse as storage
                    self.state = CoreState::CsBody { until: now + self.cs_cycles_pending };
                    return;
                }
                LockStep::Released => {
                    let coh_cycles = self.coh_started.as_u64();
                    let cse_cycles = now.saturating_since(self.cse_started);
                    self.counters.record_cs(CsRecord {
                        coh_cycles,
                        cse_cycles,
                        finished_at: now,
                    });
                    self.current_lock = None;
                    self.seg_idx += 1;
                    self.state = CoreState::Dispatch;
                    // Continue with the next segment immediately.
                    self.tick(now, l1, out, timeline);
                    return;
                }
            }
        }
    }

    /// OCOR packet priority for the next lock-protocol operation.
    fn ocor_priority(&self, lock: usize, is_lock_op: bool) -> u8 {
        if !self.params.ocor || !is_lock_op {
            return 0;
        }
        if self.woken_recently {
            // Wakeup requests get the single lowest priority level.
            return 0;
        }
        match self.handles[lock].remaining_retries() {
            Some(rtr) => {
                // 8 spinning levels: fewer remaining retries -> higher
                // priority (closer to the expensive sleep).
                let budget = self.params.retry_budget.max(1) as u64;
                let r = u64::from(rtr.clamp(1, self.params.retry_budget));
                (8 - ((r - 1) * 8 / budget).min(7)) as u8
            }
            None => 0,
        }
    }
}
