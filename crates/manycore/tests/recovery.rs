//! Fault-recovery acceptance tests: every fault the harness can inject
//! is *survived* when the recovery layer is armed — the run terminates
//! with the full lock-handoff count and the same final lock state as a
//! fault-free run — while the identical fault with recovery off still
//! reproduces the structured abort the watchdog / invariant-checker
//! subsystem was built to raise.

use inpg_locks::LockPrimitive;
use inpg_manycore::{
    InvariantViolation, LockPlacement, SimError, System, SystemConfig, ThreadProgram,
};
use inpg_noc::{BigRouterPlacement, FaultKind, FaultPlan, NocConfig};
use inpg_sim::{CoreId, LockId};
use proptest::prelude::*;

const RECOVERY_TIMEOUT: u64 = 4_096;

fn inpg_cfg(primitive: LockPrimitive) -> SystemConfig {
    let mut cfg = SystemConfig::baseline();
    cfg.noc = NocConfig {
        width: 4,
        height: 4,
        placement: BigRouterPlacement::All,
        ..NocConfig::baseline()
    };
    cfg.primitive = primitive;
    cfg.max_cycles = 3_000_000;
    cfg.sleep_entry_cycles = 200;
    cfg.wakeup_cycles = 300;
    cfg
}

fn recovering(mut cfg: SystemConfig, budget: u32) -> SystemConfig {
    cfg.recover = true;
    cfg.recovery_timeout = RECOVERY_TIMEOUT;
    cfg.recovery_retry_budget = budget;
    cfg
}

fn hot_lock_programs(cores: usize, rounds: usize, compute: u64, cs: u64) -> Vec<ThreadProgram> {
    (0..cores).map(|_| ThreadProgram::new().rounds(rounds, compute, LockId::new(0), cs)).collect()
}

/// The ticket-lock storm of the PR-1 robustness tests: spinners hold
/// shared copies of the hot line, so every acquire collects a full
/// round of invalidation acknowledgements — dropping one wedges the
/// winner unless recovery retransmits around it.
fn ticket_system(cfg: SystemConfig, faults: FaultPlan) -> System {
    let mut cfg = cfg;
    cfg.noc.faults = faults;
    cfg.watchdog_cycles = Some(200_000);
    cfg.invariant_check_interval = Some(256);
    let programs = hot_lock_programs(16, 8, 0, 10);
    System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(5))).unwrap()
}

/// A TAS storm: test-and-set spins are RMWs, so every REQUEST-class
/// packet is an exclusive request the recovery layer can retransmit
/// (no plain loads, which recovery deliberately does not cover).
fn tas_system(cfg: SystemConfig, faults: FaultPlan) -> System {
    let mut cfg = cfg;
    cfg.noc.faults = faults;
    cfg.watchdog_cycles = Some(200_000);
    cfg.invariant_check_interval = Some(256);
    let programs = hot_lock_programs(16, 4, 20, 20);
    System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(5))).unwrap()
}

/// Scans drop-ack ordinals until one wedges the recovery-off ticket
/// workload (the PR-1 canonical scenario). Deterministic, so the
/// ordinal reproduces the identical wedge in every test below.
fn first_wedging_ack_ordinal() -> u64 {
    for nth in 1..=64u64 {
        let cfg = inpg_cfg(LockPrimitive::Ticket);
        let mut system =
            ticket_system(cfg, FaultPlan::none().with(FaultKind::DropAck { nth }));
        if system.run_checked().is_err() {
            return nth;
        }
    }
    panic!("no dropped ack in 1..=64 wedged the ticket workload");
}

/// Scans link-drop ordinals for one that swallows an *exclusive*
/// request: recovery-off wedges, recovery-on completes. Ordinals that
/// hit a plain load (the test-and-test-and-set spin reads) also wedge,
/// but are outside recovery's charter — the retransmission timer only
/// arms on exclusive transactions — so the scan skips them.
fn wedging_recoverable_request_ordinal() -> u64 {
    for nth in 1..=64u64 {
        let fault = FaultPlan::none().with(FaultKind::LinkDrop { nth });
        let mut off = tas_system(inpg_cfg(LockPrimitive::Tas), fault.clone());
        if off.run_checked().is_ok() {
            continue;
        }
        let mut on = tas_system(recovering(inpg_cfg(LockPrimitive::Tas), 4), fault);
        if on.run_checked().is_ok() {
            return nth;
        }
    }
    panic!("no link-drop ordinal in 1..=64 swallowed a recoverable exclusive request");
}

/// The acceptance demo: PR 1's canonical dropped-`InvAck` scenario.
/// Recovery off reproduces the ack-conservation abort exactly as
/// before; recovery on completes every handoff and leaves the lock in
/// the same final state as a fault-free run.
#[test]
fn canonical_dropped_invack_recovers_with_correct_final_state() {
    let nth = first_wedging_ack_ordinal();
    let fault = FaultPlan::none().with(FaultKind::DropAck { nth });

    // Recovery off: the structured abort is unchanged.
    let mut wedged = ticket_system(inpg_cfg(LockPrimitive::Ticket), fault.clone());
    match wedged.run_checked() {
        Err(SimError::Invariant(InvariantViolation::AckConservation { .. }))
        | Err(SimError::Stall(_)) => {}
        other => panic!("recovery-off must abort as in PR 1, got {other:?}"),
    }

    // The fault-free reference run fixes the expected final state.
    let mut clean = ticket_system(inpg_cfg(LockPrimitive::Ticket), FaultPlan::none());
    let clean_result = clean.run_checked().expect("fault-free run passes");
    assert!(clean_result.completed);
    let lock_addr = clean.lock_primary(LockId::new(0));
    let clean_word = clean.read_word(lock_addr);

    // Recovery on: the same fault is survived.
    let cfg = recovering(inpg_cfg(LockPrimitive::Ticket), 4);
    let mut recovered = ticket_system(cfg, fault);
    let result = recovered
        .run_checked()
        .expect("the canonical dropped-InvAck scenario must complete under recovery");
    assert!(result.completed, "recovered run must terminate");
    assert_eq!(recovered.cs_completed(), 16 * 8, "every lock handoff must complete");
    assert_eq!(
        recovered.read_word(lock_addr),
        clean_word,
        "final lock-owner state must match the fault-free run"
    );
    assert_eq!(recovered.noc_stats().acks_dropped_by_fault, 1, "the drop really fired");
    let l1 = recovered.l1_stats();
    assert!(l1.retransmits >= 1, "recovery must have retransmitted: {l1:?}");
    assert_eq!(l1.recovery_exhausted, 0, "the budget must cover a single drop");
    // The recovered run pays for the timeout but not much more.
    assert!(
        result.cycles <= clean_result.cycles + 64 * RECOVERY_TIMEOUT,
        "recovered run ({}) must stay near the fault-free run ({})",
        result.cycles,
        clean_result.cycles
    );
}

/// A swallowed exclusive request (transient link loss) wedges the
/// recovery-off run and is survived with recovery on.
#[test]
fn dropped_request_recovers_with_full_handoff_count() {
    let nth = wedging_recoverable_request_ordinal();
    let fault = FaultPlan::none().with(FaultKind::LinkDrop { nth });

    let mut wedged = tas_system(inpg_cfg(LockPrimitive::Tas), fault.clone());
    assert!(wedged.run_checked().is_err(), "recovery-off must abort");

    let cfg = recovering(inpg_cfg(LockPrimitive::Tas), 4);
    let mut recovered = tas_system(cfg, fault);
    let result = recovered.run_checked().expect("link drop must be survived under recovery");
    assert!(result.completed);
    assert_eq!(recovered.cs_completed(), 16 * 4);
    assert_eq!(recovered.noc_stats().requests_dropped_by_fault, 1);
    assert!(recovered.l1_stats().retransmits >= 1);
}

/// Big-router failure degrades gracefully: every table flushes to
/// permanent pass-through (Original behaviour) and the run completes —
/// with and without the recovery layer armed.
#[test]
fn router_failure_degrades_to_pass_through_and_completes() {
    for recover in [false, true] {
        let mut cfg = inpg_cfg(LockPrimitive::Tas);
        if recover {
            cfg = recovering(cfg, 4);
        }
        let mut system =
            tas_system(cfg, FaultPlan::none().with(FaultKind::RouterFail { at_cycle: 1_000 }));
        let result = system
            .run_checked()
            .unwrap_or_else(|e| panic!("recover={recover}: router failure must be survived: {e}"));
        assert!(result.completed, "recover={recover}");
        assert_eq!(system.cs_completed(), 16 * 4, "recover={recover}");
        let barrier = system.barrier_stats();
        assert_eq!(
            barrier.in_pass_through, 16,
            "recover={recover}: every big router must be in pass-through"
        );
    }
}

/// Arming recovery must not disturb the scenarios that already degrade
/// gracefully without it: same termination, same handoff counts, and
/// no spurious retransmissions (their service latency never approaches
/// the timeout).
#[test]
fn graceful_fault_scenarios_still_complete_with_recovery_armed() {
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        (
            "jitter",
            FaultPlan::none().seeded(7).with(FaultKind::DelayJitter { max_extra: 12 }),
        ),
        ("barrier-off", FaultPlan::none().with(FaultKind::BarrierOff { at_cycle: 2_000 })),
        ("ttl-storm", FaultPlan::none().with(FaultKind::TtlStorm { at_cycle: 1_500 })),
        ("ei-exhaust", FaultPlan::none().with(FaultKind::EiExhaust { capacity: 0 })),
    ];
    for (name, faults) in scenarios {
        let cfg = recovering(inpg_cfg(LockPrimitive::Tas), 4);
        let mut system = tas_system(cfg, faults);
        let result = system
            .run_checked()
            .unwrap_or_else(|e| panic!("{name}: must stay recoverable with recovery armed: {e}"));
        assert!(result.completed, "{name}");
        assert_eq!(system.cs_completed(), 16 * 4, "{name}");
        assert_eq!(
            system.l1_stats().retransmits,
            0,
            "{name}: a graceful fault must not trip the recovery timer"
        );
    }
}

/// Recovery preserves determinism: the same faulty configuration run
/// twice produces identical cycle counts, handoff counts, deliveries
/// and retransmission telemetry.
#[test]
fn recovered_runs_are_deterministic() {
    let nth = first_wedging_ack_ordinal();
    let run = || {
        let cfg = recovering(inpg_cfg(LockPrimitive::Ticket), 4);
        let mut system =
            ticket_system(cfg, FaultPlan::none().with(FaultKind::DropAck { nth }));
        let result = system.run_checked().expect("recovers");
        let l1 = system.l1_stats();
        (
            result.cycles,
            system.cs_completed(),
            system.noc_stats().delivered,
            l1.retransmits,
            system.home_stats().recovery_regrants,
        )
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// With recovery armed, *every* dropped-ack ordinal is survivable —
    /// load-bearing or harmless — across fault seeds, retry budgets and
    /// timeouts: the run always terminates with the full handoff count.
    #[test]
    fn any_dropped_ack_is_survived_under_recovery(
        nth in 1u64..24,
        seed in 0u64..1_000,
        budget in 1u32..6,
        timeout_shift in 0u32..3,
    ) {
        let mut cfg = recovering(inpg_cfg(LockPrimitive::Ticket), budget);
        cfg.recovery_timeout = RECOVERY_TIMEOUT << timeout_shift;
        let faults = FaultPlan::none()
            .seeded(seed)
            .with(FaultKind::DelayJitter { max_extra: seed % 8 })
            .with(FaultKind::DropAck { nth });
        let mut system = ticket_system(cfg, faults);
        let result = system
            .run_checked()
            .unwrap_or_else(|e| panic!("nth={nth} seed={seed} budget={budget}: {e}"));
        prop_assert!(result.completed, "nth={nth} seed={seed} budget={budget}");
        prop_assert_eq!(system.cs_completed(), 16 * 8);
        prop_assert_eq!(system.l1_stats().recovery_exhausted, 0);
    }
}
