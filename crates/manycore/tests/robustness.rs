//! Robustness-subsystem acceptance tests: the fault-injection harness
//! deliberately wedges or degrades the machine, and the watchdog /
//! invariant checker must catch the wedge with a report naming the
//! culprit — while every recoverable fault scenario still terminates
//! with the correct lock-handoff counts.

use inpg_locks::LockPrimitive;
use inpg_manycore::{
    InvariantViolation, LockPlacement, SimError, System, SystemConfig, ThreadProgram,
};
use inpg_noc::{BigRouterPlacement, FaultKind, FaultPlan, NocConfig};
use inpg_sim::{CoreId, LockId};

fn inpg_cfg(primitive: LockPrimitive) -> SystemConfig {
    let mut cfg = SystemConfig::baseline();
    cfg.noc = NocConfig {
        width: 4,
        height: 4,
        placement: BigRouterPlacement::All,
        ..NocConfig::baseline()
    };
    cfg.primitive = primitive;
    cfg.max_cycles = 3_000_000;
    cfg.sleep_entry_cycles = 200;
    cfg.wakeup_cycles = 300;
    cfg
}

fn hot_lock_programs(cores: usize, rounds: usize, compute: u64, cs: u64) -> Vec<ThreadProgram> {
    (0..cores).map(|_| ThreadProgram::new().rounds(rounds, compute, LockId::new(0), cs)).collect()
}

/// A TAS storm on one hot lock with every router big — the workload the
/// recoverable-fault scenarios run.
fn wedging_system(cfg: SystemConfig) -> System {
    let programs = hot_lock_programs(16, 4, 20, 20);
    System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(5))).unwrap()
}

/// A ticket-lock storm: spinners hold shared copies of the hot line, so
/// every acquire collects a full round of invalidation acknowledgements
/// — dropping one of those wedges the winner forever. The bug class
/// this subsystem exists to catch.
fn ticket_system(faults: FaultPlan, watchdog: Option<u64>, interval: Option<u64>) -> System {
    let mut cfg = inpg_cfg(LockPrimitive::Ticket);
    cfg.noc.faults = faults;
    cfg.watchdog_cycles = watchdog;
    cfg.invariant_check_interval = interval;
    let programs = hot_lock_programs(16, 8, 0, 10);
    System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(5))).unwrap()
}

/// Scans drop-ack ordinals until one wedges the ticket workload (early
/// acks whose relay the home never depends on are harmless; the first
/// load-bearing `InvAck` is not). The simulator is deterministic, so
/// the ordinal found here reproduces the identical wedge in the
/// watchdog test below.
fn first_wedging_ack_ordinal() -> u64 {
    for nth in 1..=64u64 {
        let mut system =
            ticket_system(FaultPlan::none().with(FaultKind::DropAck { nth }), None, Some(64));
        if system.run_checked().is_err() {
            return nth;
        }
    }
    panic!("no dropped ack in 1..=64 wedged the ticket workload");
}

#[test]
fn dropped_invack_is_caught_by_the_invariant_checker() {
    let nth = first_wedging_ack_ordinal();
    let mut system =
        ticket_system(FaultPlan::none().with(FaultKind::DropAck { nth }), None, Some(64));
    match system.run_checked() {
        Err(SimError::Invariant(InvariantViolation::AckConservation {
            cycle,
            core,
            addr,
            expected,
            received,
            ..
        })) => {
            assert!(cycle.as_u64() > 0);
            assert!(received < expected, "{received} acks must be short of {expected}");
            // The culprit line is the hot lock's cache block.
            let lock_addr = system.lock_primary(LockId::new(0));
            assert_eq!(addr.block(), lock_addr.block(), "violation must name the lock line");
            assert!(core.index() < 16);
            // The drop actually happened in the network.
            assert_eq!(system.noc_stats().acks_dropped_by_fault, 1);
        }
        other => panic!("expected an ack-conservation violation, got {other:?}"),
    }
}

#[test]
fn dropped_invack_is_caught_by_the_watchdog() {
    let nth = first_wedging_ack_ordinal();
    // Invariant checking deliberately off: the watchdog alone must
    // notice the machine has wedged.
    let mut system =
        ticket_system(FaultPlan::none().with(FaultKind::DropAck { nth }), Some(20_000), None);
    match system.run_checked() {
        Err(SimError::Stall(report)) => {
            assert_eq!(report.window, 20_000);
            assert!(report.cycle.as_u64() >= 20_000);
            // The report names the wedged L1 transaction and the (empty)
            // network state the operator needs to diagnose the hang.
            assert!(report.detail.contains("l1 pending"), "detail:\n{}", report.detail);
            assert!(report.detail.contains("noc in flight: 0"), "detail:\n{}", report.detail);
            let rendered = report.to_string();
            assert!(rendered.contains("no forward progress for 20000 cycles"), "{rendered}");
        }
        other => panic!("expected a watchdog stall, got {other:?}"),
    }
}

#[test]
fn clean_run_passes_watchdog_and_invariant_checks() {
    let mut cfg = inpg_cfg(LockPrimitive::Tas);
    cfg.watchdog_cycles = Some(100_000);
    cfg.invariant_check_interval = Some(128);
    let mut system = wedging_system(cfg);
    let result = system.run_checked().expect("fault-free run must pass every check");
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 16 * 4);
}

/// Every recoverable fault scenario must degrade gracefully: the run
/// terminates with the full lock-handoff count instead of hanging, and
/// the armed watchdog + invariant checker stay quiet throughout.
#[test]
fn recoverable_fault_scenarios_terminate_with_correct_handoff_counts() {
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        (
            "jitter",
            FaultPlan::none().seeded(7).with(FaultKind::DelayJitter { max_extra: 12 }),
        ),
        ("barrier-off", FaultPlan::none().with(FaultKind::BarrierOff { at_cycle: 2_000 })),
        ("ttl-storm", FaultPlan::none().with(FaultKind::TtlStorm { at_cycle: 1_500 })),
        ("ei-exhaust", FaultPlan::none().with(FaultKind::EiExhaust { capacity: 0 })),
    ];
    for (name, faults) in scenarios {
        let mut cfg = inpg_cfg(LockPrimitive::Tas);
        cfg.noc.faults = faults;
        cfg.watchdog_cycles = Some(200_000);
        cfg.invariant_check_interval = Some(256);
        let mut system = wedging_system(cfg);
        let result = system
            .run_checked()
            .unwrap_or_else(|e| panic!("{name}: fault scenario must stay recoverable: {e}"));
        assert!(result.completed, "{name}: run must terminate");
        assert_eq!(system.cs_completed(), 16 * 4, "{name}: every lock handoff must complete");
    }
}

/// The degraded modes also hold for a sleep-capable primitive (QSL
/// exercises the wakeup path under faults).
#[test]
fn qsl_completes_under_jitter_and_barrier_off() {
    for faults in [
        FaultPlan::none().seeded(3).with(FaultKind::DelayJitter { max_extra: 8 }),
        FaultPlan::none().with(FaultKind::BarrierOff { at_cycle: 3_000 }),
    ] {
        let mut cfg = inpg_cfg(LockPrimitive::Qsl);
        cfg.noc.faults = faults;
        cfg.watchdog_cycles = Some(200_000);
        cfg.invariant_check_interval = Some(256);
        let programs = hot_lock_programs(16, 3, 100, 30);
        let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
        let result = system.run_checked().expect("QSL must survive recoverable faults");
        assert!(result.completed);
        assert_eq!(system.cs_completed(), 16 * 3);
    }
}
