//! Full-system integration tests: every lock primitive runs to
//! completion on a contended mesh, critical sections never overlap, the
//! machine is deterministic, and iNPG's early invalidation actually
//! fires and pays off.

use inpg_locks::LockPrimitive;
use inpg_manycore::{LockPlacement, System, SystemConfig, ThreadProgram};
use inpg_noc::{BigRouterPlacement, NocConfig};
use inpg_sim::{CoreId, LockId};

fn small_cfg(primitive: LockPrimitive) -> SystemConfig {
    let mut cfg = SystemConfig::baseline();
    cfg.noc = NocConfig { width: 4, height: 4, ..NocConfig::baseline() };
    cfg.primitive = primitive;
    cfg.max_cycles = 3_000_000;
    // Keep the sleep path cheap so QSL tests stay fast.
    cfg.sleep_entry_cycles = 200;
    cfg.wakeup_cycles = 300;
    cfg
}

fn inpg_cfg(primitive: LockPrimitive) -> SystemConfig {
    let mut cfg = small_cfg(primitive);
    cfg.noc.placement = BigRouterPlacement::All;
    cfg
}

fn hot_lock_programs(cores: usize, rounds: usize, compute: u64, cs: u64) -> Vec<ThreadProgram> {
    (0..cores).map(|_| ThreadProgram::new().rounds(rounds, compute, LockId::new(0), cs)).collect()
}

/// Asserts that no two critical sections of the same run overlap in
/// time (mutual exclusion at the system level).
fn assert_no_cs_overlap(system: &System) {
    let mut intervals: Vec<(u64, u64, usize)> = Vec::new();
    for (t, counters) in system.thread_counters().iter().enumerate() {
        for r in &counters.cs_records {
            let end = r.finished_at.as_u64();
            let start = end - r.cse_cycles;
            intervals.push((start, end, t));
        }
    }
    intervals.sort_unstable();
    for pair in intervals.windows(2) {
        let (s0, e0, t0) = pair[0];
        let (s1, _, t1) = pair[1];
        assert!(
            s1 >= e0,
            "critical sections overlap: thread {t0} [{s0},{e0}) vs thread {t1} starting {s1}"
        );
    }
}

#[test]
fn every_primitive_completes_under_contention() {
    for primitive in LockPrimitive::ALL {
        let cfg = small_cfg(primitive);
        let programs = hot_lock_programs(16, 3, 100, 30);
        let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
        let result = system.run();
        assert!(result.completed, "{primitive} did not finish in {} cycles", result.cycles);
        assert_eq!(system.cs_completed(), 16 * 3, "{primitive}");
        assert_no_cs_overlap(&system);
    }
}

#[test]
fn every_primitive_completes_with_inpg() {
    for primitive in LockPrimitive::ALL {
        let cfg = inpg_cfg(primitive);
        let programs = hot_lock_programs(16, 3, 100, 30);
        let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
        let result = system.run();
        assert!(result.completed, "{primitive}+iNPG did not finish");
        assert_eq!(system.cs_completed(), 16 * 3, "{primitive}+iNPG");
        assert_no_cs_overlap(&system);
    }
}

#[test]
fn qsl_with_ocor_completes() {
    let cfg = small_cfg(LockPrimitive::Qsl).with_ocor(true);
    let programs = hot_lock_programs(16, 3, 50, 20);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 48);
    assert_no_cs_overlap(&system);
}

#[test]
fn inpg_plus_ocor_completes() {
    let cfg = inpg_cfg(LockPrimitive::Qsl).with_ocor(true);
    let programs = hot_lock_programs(16, 3, 50, 20);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 48);
    assert_no_cs_overlap(&system);
}

#[test]
fn inpg_stops_requests_and_reduces_roundtrips_under_tas() {
    // TAS on a hot lock generates the GetX storms iNPG targets.
    let programs = hot_lock_programs(16, 4, 20, 20);

    let mut baseline =
        System::new(small_cfg(LockPrimitive::Tas), programs.clone(), 1, LockPlacement::At(CoreId::new(5)))
            .unwrap();
    let base_result = baseline.run();
    assert!(base_result.completed);

    let mut inpg =
        System::new(inpg_cfg(LockPrimitive::Tas), programs, 1, LockPlacement::At(CoreId::new(5)))
            .unwrap();
    let inpg_result = inpg.run();
    assert!(inpg_result.completed);

    // The mechanism must actually fire.
    let stops = inpg.barrier_stats().requests_stopped;
    assert!(stops > 0, "no GetX was ever stopped by a big router");
    assert!(
        inpg.barrier_stats().acks_relayed > 0,
        "no early acknowledgement was ever relayed"
    );

    // The early round trips should be visibly shorter on average.
    let base_rt = baseline.invack_roundtrips();
    let inpg_rt = inpg.invack_roundtrips();
    assert!(base_rt.total_count() > 0);
    assert!(inpg_rt.total_count() > 0);
    assert!(
        inpg_rt.mean() < base_rt.mean(),
        "iNPG mean Inv-Ack round trip {:.1} not below baseline {:.1}",
        inpg_rt.mean(),
        base_rt.mean()
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = small_cfg(LockPrimitive::Mcs);
        let programs = hot_lock_programs(16, 2, 75, 25);
        let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
        let result = system.run();
        (result.cycles, system.cs_completed(), system.noc_stats().delivered)
    };
    assert_eq!(run(), run());
}

#[test]
fn multiple_locks_interleave() {
    let cfg = small_cfg(LockPrimitive::Ticket);
    let programs: Vec<ThreadProgram> = (0..16)
        .map(|t| {
            ThreadProgram::new()
                .compute(10)
                .critical(LockId::new(t % 3), 15)
                .compute(10)
                .critical(LockId::new((t + 1) % 3), 15)
        })
        .collect();
    let mut system = System::new(cfg, programs, 3, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 32);
}

#[test]
fn phase_accounting_is_consistent() {
    let cfg = small_cfg(LockPrimitive::Mcs);
    let programs = hot_lock_programs(16, 2, 100, 25);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    for (t, c) in system.thread_counters().iter().enumerate() {
        // Each thread did 2 * 100 parallel cycles.
        assert_eq!(c.parallel_cycles, 200, "thread {t}");
        // CSE at least the programmed bodies (plus release protocol).
        assert!(c.cse_cycles >= 2 * 25, "thread {t} cse={}", c.cse_cycles);
        assert_eq!(c.cs_records.len(), 2);
        // Total accounted cycles equal the thread's lifetime.
        let finish = c.parallel_cycles + c.coh_cycles + c.cse_cycles;
        assert!(finish <= result.cycles, "thread {t} accounted {finish} of {}", result.cycles);
    }
}

#[test]
fn timeline_matches_counters() {
    let mut cfg = small_cfg(LockPrimitive::Mcs);
    cfg.record_timeline = true;
    let programs = hot_lock_programs(16, 2, 100, 25);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    let timeline = system.timeline().expect("timeline enabled");
    let (p, c, s) = timeline.shares(
        inpg_sim::Cycle::ZERO,
        inpg_sim::Cycle::new(result.cycles),
        None,
    );
    assert!((p + c + s - 1.0).abs() < 1e-9);
    assert!(p > 0.0 && c > 0.0 && s > 0.0);
}

#[test]
fn lock_homed_at_requested_tile() {
    let cfg = small_cfg(LockPrimitive::Tas);
    let programs = hot_lock_programs(16, 1, 10, 10);
    let system = System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(9))).unwrap();
    let primary = system.lock_primary(LockId::new(0));
    assert_eq!(system.home_of(primary), CoreId::new(9));
}

#[test]
fn rejects_bad_inputs() {
    let cfg = small_cfg(LockPrimitive::Tas);
    // Wrong program count.
    assert!(System::new(cfg.clone(), hot_lock_programs(3, 1, 1, 1), 1, LockPlacement::Interleaved)
        .is_err());
    // Lock out of range.
    let programs: Vec<ThreadProgram> =
        (0..16).map(|_| ThreadProgram::new().critical(LockId::new(5), 1)).collect();
    assert!(System::new(cfg, programs, 1, LockPlacement::Interleaved).is_err());
}

/// After a completed run the lock data structures must be in their
/// quiescent state: these invariants catch lost updates, double grants,
/// and protocol value corruption end to end.
#[test]
fn lock_word_final_state_invariants() {
    let threads = 16usize;
    let rounds = 4usize;
    for primitive in LockPrimitive::ALL {
        for big in [false, true] {
            let cfg = if big { inpg_cfg(primitive) } else { small_cfg(primitive) };
            let programs = hot_lock_programs(threads, rounds, 60, 20);
            let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
            let result = system.run();
            assert!(result.completed, "{primitive} big={big}");
            let total = (threads * rounds) as u64;
            let word = system.read_word(system.lock_primary(inpg_sim::LockId::new(0)));
            match primitive {
                LockPrimitive::Tas | LockPrimitive::Qsl => {
                    assert_eq!(word, 0, "{primitive}: lock must end released");
                }
                LockPrimitive::Ticket => {
                    assert_eq!(word >> 32, total, "{primitive}: tickets taken");
                    assert_eq!(word & 0xFFFF_FFFF, total, "{primitive}: tickets served");
                }
                LockPrimitive::Abql => {
                    assert_eq!(word, total, "{primitive}: tail counts acquisitions");
                }
                LockPrimitive::Mcs => {
                    assert_eq!(word, 0, "{primitive}: tail must end null");
                }
            }
        }
    }
}

/// ABQL's tail must count every acquisition exactly once (lost or
/// duplicated baton passes would desynchronize it).
#[test]
fn abql_tail_counts_every_acquisition() {
    let threads = 16usize;
    let rounds = 3usize;
    let cfg = small_cfg(LockPrimitive::Abql);
    let programs = hot_lock_programs(threads, rounds, 60, 20);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    assert!(system.run().completed);
    let word = system.read_word(system.lock_primary(inpg_sim::LockId::new(0)));
    assert_eq!(word, (threads * rounds) as u64);
}

/// Force the QSL sleep path (tiny retry budget, long critical sections)
/// and check that threads actually deschedule, get woken by the
/// release's invalidation, and the run still completes exactly.
#[test]
fn qsl_sleep_path_is_exercised_and_correct() {
    let mut cfg = small_cfg(LockPrimitive::Qsl);
    cfg.retry_budget = 4;
    cfg.sleep_entry_cycles = 50;
    cfg.wakeup_cycles = 80;
    let programs = hot_lock_programs(16, 3, 50, 400);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 48);
    assert_no_cs_overlap(&system);
    let slept: u64 = system.thread_counters().iter().map(|c| c.sleep_cycles).sum();
    assert!(slept > 0, "long CSs with a 4-retry budget must cause sleeping");
    // Lock released at the end.
    assert_eq!(system.read_word(system.lock_primary(inpg_sim::LockId::new(0))), 0);
}

/// COH must include descheduled time: a sleeping thread is still
/// competing (the paper counts context switch & sleep in COH).
#[test]
fn sleep_time_is_counted_as_competition() {
    let mut cfg = small_cfg(LockPrimitive::Qsl);
    cfg.retry_budget = 4;
    let programs = hot_lock_programs(16, 2, 50, 500);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    assert!(system.run().completed);
    for (t, c) in system.thread_counters().iter().enumerate() {
        assert!(
            c.sleep_cycles <= c.coh_cycles,
            "thread {t}: sleep {} exceeds COH {}",
            c.sleep_cycles,
            c.coh_cycles
        );
    }
}

/// Mixed workloads where some threads have empty programs must still
/// complete and account phases sanely.
#[test]
fn empty_and_mixed_programs_complete() {
    let cfg = small_cfg(LockPrimitive::Tas);
    let programs: Vec<ThreadProgram> = (0..16)
        .map(|t| match t % 3 {
            0 => ThreadProgram::new(),
            1 => ThreadProgram::new().compute(500),
            _ => ThreadProgram::new().rounds(2, 50, LockId::new(0), 10),
        })
        .collect();
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 5 * 2);
    // Threads with empty programs finish at cycle 0.
    let counters = system.thread_counters();
    assert_eq!(counters[0].total(), 0);
}

/// A 1x1 "mesh": one core, no network hops, everything still works.
#[test]
fn single_core_degenerate_mesh() {
    let mut cfg = SystemConfig::baseline();
    cfg.noc = NocConfig { width: 1, height: 1, ..NocConfig::baseline() };
    cfg.primitive = LockPrimitive::Qsl;
    let programs = vec![ThreadProgram::new().rounds(3, 20, LockId::new(0), 15)];
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 3);
}

/// Zero-cycle critical sections: acquire and release back-to-back.
#[test]
fn zero_length_critical_sections() {
    let cfg = small_cfg(LockPrimitive::Mcs);
    let programs = hot_lock_programs(16, 3, 25, 0);
    let mut system = System::new(cfg, programs, 1, LockPlacement::Interleaved).unwrap();
    let result = system.run();
    assert!(result.completed);
    assert_eq!(system.cs_completed(), 48);
}
