//! Strongly-typed identifiers shared across all simulator crates.
//!
//! Each identifier is a zero-cost newtype. Using distinct types for cycles,
//! cores, threads, memory addresses and locks prevents whole classes of
//! index-confusion bugs in a simulator where almost everything is "a small
//! integer".

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulated clock cycle count.
///
/// `Cycle` is an absolute point on the global simulation clock (cycle 0 is
/// the start of simulation). Durations are represented as plain `u64`s and
/// combined with `Cycle` through [`Add`]/[`Sub`].
///
/// # Example
///
/// ```
/// use inpg_sim::Cycle;
/// let start = Cycle::new(100);
/// let end = start + 28;
/// assert_eq!(end.as_u64(), 128);
/// assert_eq!(end - start, 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The start of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the number of cycles from `earlier` to `self`, saturating
    /// at zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Advances the clock by one cycle, returning the new value.
    #[must_use]
    pub fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Number of cycles between two clock points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(rhs.0 <= self.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

/// Identifies one core (and its tile: router, NI, private L1, L2 bank).
///
/// Cores are numbered row-major over the mesh: core `y * width + x` sits at
/// mesh coordinate `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core id from a raw index.
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// The raw index, suitable for indexing per-core vectors.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core {}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        CoreId(index)
    }
}

/// Identifies one software thread.
///
/// The paper runs one thread per core, but the types stay distinct because
/// the queue spin-lock's sleep phase conceptually deschedules a *thread*
/// while the *core* remains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Creates a thread id from a raw index.
    pub const fn new(index: usize) -> Self {
        ThreadId(index)
    }

    /// The raw index, suitable for indexing per-thread vectors.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread {}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(index: usize) -> Self {
        ThreadId(index)
    }
}

/// A physical byte address in the simulated memory.
///
/// The cache hierarchy works on 128-byte blocks (Table 1 of the paper);
/// [`Addr::block`] truncates to the containing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

/// Cache block size in bytes (Table 1: 128 B block size).
pub const BLOCK_BYTES: u64 = 128;

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The address of the containing 128-byte cache block.
    pub const fn block(self) -> Addr {
        Addr(self.0 & !(BLOCK_BYTES - 1))
    }

    /// The block index (block address divided by the block size), used for
    /// home-node interleaving.
    pub const fn block_index(self) -> u64 {
        self.0 / BLOCK_BYTES
    }

    /// Whether this address is block-aligned.
    pub const fn is_block_aligned(self) -> bool {
        self.0.is_multiple_of(BLOCK_BYTES)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// Identifies one lock variable in a workload.
///
/// Lock ids are dense indices into the workload's lock table; the system
/// assigns each lock a block-aligned [`Addr`] at setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(usize);

impl LockId {
    /// Creates a lock id from a raw index.
    pub const fn new(index: usize) -> Self {
        LockId(index)
    }

    /// The raw index, suitable for indexing per-lock vectors.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock {}", self.0)
    }
}

impl From<usize> for LockId {
    fn from(index: usize) -> Self {
        LockId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).as_u64(), 15);
        assert_eq!((c + 5) - c, 5);
        assert_eq!(c.next().as_u64(), 11);
        let mut c2 = c;
        c2 += 3;
        assert_eq!(c2.as_u64(), 13);
    }

    #[test]
    fn cycle_saturating_since() {
        assert_eq!(Cycle::new(5).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(5)), 4);
    }

    #[test]
    fn addr_block_truncation() {
        let a = Addr::new(0x1234);
        assert_eq!(a.block().as_u64(), (0x1234 / BLOCK_BYTES) * BLOCK_BYTES);
        assert!(a.block().is_block_aligned());
        assert_eq!(a.block_index(), 0x1234 / 128);
    }

    #[test]
    fn addr_alignment() {
        assert!(Addr::new(0).is_block_aligned());
        assert!(Addr::new(128).is_block_aligned());
        assert!(!Addr::new(64).is_block_aligned());
    }

    #[test]
    fn ids_display() {
        assert_eq!(CoreId::new(7).to_string(), "core 7");
        assert_eq!(ThreadId::new(3).to_string(), "thread 3");
        assert_eq!(LockId::new(1).to_string(), "lock 1");
        assert_eq!(Cycle::new(42).to_string(), "cycle 42");
        assert_eq!(Addr::new(256).to_string(), "0x100");
    }

    #[test]
    fn ids_from_usize() {
        assert_eq!(CoreId::from(4).index(), 4);
        assert_eq!(ThreadId::from(4).index(), 4);
        assert_eq!(LockId::from(4).index(), 4);
    }
}
