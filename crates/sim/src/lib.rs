//! Deterministic simulation kernel for the iNPG reproduction.
//!
//! This crate holds the small, dependency-free foundation everything else
//! builds on:
//!
//! * strongly-typed identifiers ([`Cycle`], [`CoreId`], [`ThreadId`],
//!   [`Addr`], [`LockId`]) so that a cache-line address can never be
//!   confused with a core index;
//! * a deterministic, seedable random number generator ([`rng::SimRng`])
//!   so that a given seed always reproduces the same simulated execution
//!   cycle for cycle;
//! * a cycle-keyed event wheel ([`event::EventWheel`]) used by components
//!   that sleep for a known number of cycles (core compute phases, OS
//!   context switches, barrier TTLs);
//! * shared configuration error types.
//!
//! # Example
//!
//! ```
//! use inpg_sim::{Cycle, event::EventWheel};
//!
//! let mut wheel: EventWheel<&'static str> = EventWheel::new();
//! wheel.schedule(Cycle::new(5), "wake thread 3");
//! wheel.schedule(Cycle::new(2), "barrier TTL expired");
//! assert_eq!(wheel.pop_due(Cycle::new(2)), Some("barrier TTL expired"));
//! assert_eq!(wheel.pop_due(Cycle::new(2)), None);
//! assert_eq!(wheel.pop_due(Cycle::new(7)), Some("wake thread 3"));
//! ```

pub mod abort;
pub mod coverage;
pub mod event;
pub mod ids;
pub mod rng;
pub mod watchdog;

pub use abort::AbortHandle;
pub use event::EventWheel;
pub use ids::{Addr, CoreId, Cycle, LockId, ThreadId};
pub use rng::SimRng;
pub use watchdog::Watchdog;

use std::error::Error;
use std::fmt;

/// Error returned when a simulation configuration is internally
/// inconsistent (e.g. a mesh dimension of zero, or more big routers than
/// routers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The human-readable reason the configuration was rejected.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_message() {
        let err = ConfigError::new("mesh dimension must be nonzero");
        assert_eq!(err.to_string(), "mesh dimension must be nonzero");
        assert_eq!(err.message(), "mesh dimension must be nonzero");
    }

    #[test]
    fn config_error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
