//! A forward-progress watchdog for cycle-driven simulations.
//!
//! The simulator feeds the watchdog a monotonically non-decreasing
//! *progress* metric (retired events, ejected packets, completed critical
//! sections — anything that only moves when real work happens). The
//! watchdog slices time into fixed windows; a window that closes without
//! the metric moving means the simulation is wedged and the caller should
//! abort with a diagnostic instead of spinning to the cycle bound.

use crate::ids::Cycle;

/// Forward-progress monitor over fixed cycle windows.
///
/// # Example
///
/// ```
/// use inpg_sim::{Cycle, Watchdog};
///
/// let mut dog = Watchdog::new(100);
/// assert!(!dog.observe(Cycle::new(50), 7), "window still open");
/// assert!(!dog.observe(Cycle::new(100), 8), "progress moved");
/// assert!(dog.observe(Cycle::new(200), 8), "a full window with no progress");
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    window: u64,
    window_started: Cycle,
    progress_at_start: u64,
}

impl Watchdog {
    /// Creates a watchdog that trips after `window` cycles without
    /// progress.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "watchdog window must be nonzero");
        Watchdog { window, window_started: Cycle::ZERO, progress_at_start: 0 }
    }

    /// The configured window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Feeds the current cycle and progress metric. Returns `true` when a
    /// full window has elapsed with no change in `progress` (a stall);
    /// otherwise rolls the window forward as needed and returns `false`.
    pub fn observe(&mut self, now: Cycle, progress: u64) -> bool {
        if progress != self.progress_at_start {
            self.window_started = now;
            self.progress_at_start = progress;
            return false;
        }
        if now.saturating_since(self.window_started) >= self.window {
            return true;
        }
        false
    }

    /// Progress value at the start of the currently open window.
    pub fn last_progress(&self) -> u64 {
        self.progress_at_start
    }

    /// Cycle the currently open window started at.
    pub fn window_started(&self) -> Cycle {
        self.window_started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_resets_the_window() {
        let mut dog = Watchdog::new(10);
        assert!(!dog.observe(Cycle::new(9), 0));
        assert!(!dog.observe(Cycle::new(12), 1), "progress at 12 reopens");
        assert!(!dog.observe(Cycle::new(21), 1), "only 9 cycles stalled");
        assert!(dog.observe(Cycle::new(22), 1), "10 cycles without progress");
    }

    #[test]
    fn immediate_stall_without_any_progress() {
        let mut dog = Watchdog::new(5);
        assert!(dog.observe(Cycle::new(5), 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_window_rejected() {
        let _ = Watchdog::new(0);
    }
}
