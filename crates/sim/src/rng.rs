//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a single seed, so we
//! implement a small, well-known generator (xoshiro256++ seeded through
//! SplitMix64) instead of relying on platform entropy. Workload crates that
//! want the richer `rand` API layer it on top; everything inside the
//! simulator core uses [`SimRng`] directly.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use inpg_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose entire state is derived from `seed` via
    /// the SplitMix64 expansion, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        SimRng { state }
    }

    /// Returns the next 64 random bits.
    #[inpg_hot::hot]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `numer / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn chance(&mut self, numer: u64, denom: u64) -> bool {
        self.next_below(denom) < numer
    }

    /// Forks a statistically independent child generator; used to hand
    /// each simulated thread its own stream without sharing state.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = rng.next_range(10, 12);
            assert!((10..=12).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 12;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!rng.chance(0, 10));
        assert!(rng.chance(10, 10));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::seed_from_u64(9);
        let mut child = parent.fork();
        // The child's next output should not generally equal the parent's.
        let equal = (0..16).filter(|_| parent.next_u64() == child.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_below_zero_panics() {
        SimRng::seed_from_u64(0).next_below(0);
    }
}
