//! Cooperative abort for long simulation runs.
//!
//! An [`AbortHandle`] is a cloneable flag shared between a running
//! simulation and the harness that started it. The simulation polls the
//! flag at a coarse cadence inside its cycle loop and winds down with a
//! typed error when it is raised; the harness raises it from another
//! thread when a deadline passes or a shutdown begins.
//!
//! The handle is deliberately dumb — a single atomic bool. The
//! simulator must never read a wall clock (determinism depends on
//! that), so deciding *when* to abort is entirely the harness's job;
//! the simulator only ever observes the already-made decision. A run
//! that completes before the flag is raised is byte-identical to one
//! executed with no handle at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe abort flag.
///
/// # Example
///
/// ```
/// use inpg_sim::AbortHandle;
///
/// let handle = AbortHandle::new();
/// let observer = handle.clone();
/// assert!(!observer.is_aborted());
/// handle.abort();
/// assert!(observer.is_aborted());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbortHandle {
    flag: Arc<AtomicBool>,
}

impl AbortHandle {
    /// A fresh, un-raised handle.
    pub fn new() -> Self {
        AbortHandle { flag: Arc::new(AtomicBool::new(false)) }
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn abort(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_aborted(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_flag() {
        let a = AbortHandle::new();
        let b = a.clone();
        assert!(!a.is_aborted() && !b.is_aborted());
        b.abort();
        assert!(a.is_aborted() && b.is_aborted());
        // Idempotent.
        a.abort();
        assert!(b.is_aborted());
    }

    #[test]
    fn distinct_handles_are_independent() {
        let a = AbortHandle::new();
        let b = AbortHandle::new();
        a.abort();
        assert!(!b.is_aborted());
    }

    #[test]
    fn raising_from_another_thread_is_observed() {
        let handle = AbortHandle::new();
        let raiser = handle.clone();
        std::thread::spawn(move || raiser.abort()).join().expect("raiser thread");
        assert!(handle.is_aborted());
    }
}
