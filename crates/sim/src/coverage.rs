//! Protocol transition-coverage recording.
//!
//! The protocol dispatch sites (L1 message handling, home-node message
//! processing, message construction, and the lock state machines) record
//! which (site, variant) pairs they actually execute into one global
//! fixed-size bitset. `cargo xtask analyze` resets the bitset, drives the
//! timed simulator and the untimed model checker in-process, and diffs
//! the observed bits against the statically declared transition matrix
//! parsed from the same sources.
//!
//! Design constraints (the recording runs inside per-cycle code):
//!
//! * **allocation-free** — a `static` array of `AtomicU64` words; no
//!   growth, no hash collections;
//! * **deterministic** — recording is a monotonic bitwise OR, so the
//!   final bitset of a deterministic run does not depend on thread
//!   interleaving or iteration order;
//! * **stable IDs** — each site owns a fixed `[base, base + cap)` ID
//!   range below; a variant's ID is `base + variant_index`, where the
//!   index is the variant's position in its enum declaration. The static
//!   analyzer derives the same IDs from source, which is what makes the
//!   observed bits diffable against the declared matrix.
//!
//! Sites carry slack (`cap` above the current variant count) so adding
//! enum variants does not renumber other sites' IDs.

use std::sync::atomic::{AtomicU64, Ordering};

/// One instrumented dispatch site: a contiguous transition-ID range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Stable site name (also used by the static analyzer and in the
    /// emitted matrix/coverage artifacts).
    pub name: &'static str,
    /// First transition ID owned by this site.
    pub base: usize,
    /// Number of IDs reserved for this site (>= the enum's variant count).
    pub cap: usize,
}

impl Site {
    /// The transition ID of `variant_index` at this site.
    #[inline]
    pub const fn id(&self, variant_index: usize) -> usize {
        self.base + variant_index
    }

    /// Whether `id` belongs to this site's range.
    pub const fn owns(&self, id: usize) -> bool {
        id >= self.base && id < self.base + self.cap
    }
}

/// `CoherenceMsg::vnet` — every constructed-and-routed message variant.
pub const MSG_VNET: Site = Site { name: "msg_vnet", base: 0, cap: 16 };
/// `L1Core::handle` — message variants delivered to a private cache.
pub const L1_HANDLE: Site = Site { name: "l1_handle", base: 16, cap: 16 };
/// `HomeCore::process` — message variants processed by a home node.
pub const HOME_PROCESS: Site = Site { name: "home_process", base: 32, cap: 16 };
/// `LockHandle::step` — lock-machine states asked for their next step.
pub const LOCK_STEP: Site = Site { name: "lock_step", base: 48, cap: 64 };
/// `LockHandle::on_result` — lock-machine states receiving a result.
pub const LOCK_ON_RESULT: Site = Site { name: "lock_on_result", base: 112, cap: 64 };

/// Every instrumented site, in transition-ID order.
pub const SITES: [Site; 5] = [MSG_VNET, L1_HANDLE, HOME_PROCESS, LOCK_STEP, LOCK_ON_RESULT];

/// One past the largest valid transition ID.
pub const TRANSITION_CAP: usize = LOCK_ON_RESULT.base + LOCK_ON_RESULT.cap;

/// Bitset words backing [`TRANSITION_CAP`] transition bits.
pub const WORDS: usize = TRANSITION_CAP.div_ceil(64);

// sync: plain shared counters with no release/acquire pairing needed —
// each bit is write-once-true and readers only consume snapshots between
// phases; zero-initialized statics carry no happens-before obligation.
static BITS: [AtomicU64; WORDS] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Records transition `id` as observed. Out-of-range IDs are ignored
/// (they cannot occur for IDs produced via [`Site::id`] with a valid
/// variant index; the guard keeps the recording panic-free by contract).
#[inline]
pub fn record(id: usize) {
    if id < TRANSITION_CAP {
        // sync: Relaxed — the bit is an idempotent monotonic flag; no
        // other memory is published with it, so no ordering is needed,
        // and this sits on the per-transition hot path.
        BITS[id / 64].fetch_or(1 << (id % 64), Ordering::Relaxed);
    }
}

/// A copy of the current observed bitset.
pub fn snapshot() -> [u64; WORDS] {
    let mut out = [0u64; WORDS];
    for (word, bits) in out.iter_mut().zip(BITS.iter()) {
        // sync: Relaxed — snapshots are taken between phases when no
        // recorder runs concurrently; a racing late bit would merely be
        // attributed to the next snapshot, never torn or invented.
        *word = bits.load(Ordering::Relaxed);
    }
    out
}

/// Clears every observed bit. Call between measurement phases (the
/// bitset is process-global).
pub fn reset() {
    for bits in BITS.iter() {
        // sync: Relaxed — reset runs between phases (same phase
        // discipline as `snapshot`); there is no concurrent recorder
        // whose writes the store must order against.
        bits.store(0, Ordering::Relaxed);
    }
}

/// Whether transition `id` is set in `snap`.
pub fn is_set(snap: &[u64; WORDS], id: usize) -> bool {
    id < TRANSITION_CAP && snap[id / 64] & (1 << (id % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_disjoint_and_ordered() {
        for pair in SITES.windows(2) {
            assert_eq!(pair[0].base + pair[0].cap, pair[1].base, "{:?}", pair);
        }
        assert_eq!(SITES[0].base, 0);
        assert_eq!(TRANSITION_CAP, 176);
        assert_eq!(WORDS, 3);
    }

    #[test]
    fn record_sets_exactly_one_monotonic_bit() {
        // No reset() here: the bitset is process-global and other tests
        // in this binary may be recording concurrently. Setting a bit is
        // monotonic, so asserting presence is race-free.
        let id = LOCK_ON_RESULT.id(63); // last valid ID
        record(id);
        assert!(is_set(&snapshot(), id));
        assert!(LOCK_ON_RESULT.owns(id));
        assert!(!LOCK_STEP.owns(id));
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        record(TRANSITION_CAP);
        record(usize::MAX);
        assert!(!is_set(&snapshot(), TRANSITION_CAP));
    }
}
