//! A cycle-keyed event wheel.
//!
//! Most of the simulator is ticked every cycle, but several components
//! sleep for a statically-known duration: a core executing a compute
//! segment, the OS completing a context switch, a DRAM access finishing.
//! [`EventWheel`] stores `(due_cycle, payload)` pairs and pops payloads in
//! due-cycle order, with FIFO ordering among events due the same cycle so
//! that simulation stays deterministic.

use crate::Cycle;
use std::collections::BinaryHeap;

/// One pending entry: ordered by due cycle, then by insertion sequence.
#[derive(Debug)]
struct Entry<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (due, seq) pops
        // first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of events keyed by absolute [`Cycle`].
///
/// # Example
///
/// ```
/// use inpg_sim::{Cycle, EventWheel};
/// let mut wheel = EventWheel::new();
/// wheel.schedule(Cycle::new(10), 'b');
/// wheel.schedule(Cycle::new(10), 'c'); // same cycle: FIFO
/// wheel.schedule(Cycle::new(1), 'a');
/// let now = Cycle::new(10);
/// let drained: Vec<char> = wheel.drain_due(now).collect();
/// assert_eq!(drained, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventWheel<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        EventWheel { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to become due at cycle `due`.
    pub fn schedule(&mut self, due: Cycle, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.due <= now) {
            Some(self.heap.pop().expect("peeked entry exists").payload)
        } else {
            None
        }
    }

    /// Drains every event due at or before `now`, in (due, FIFO) order.
    pub fn drain_due(&mut self, now: Cycle) -> DrainDue<'_, T> {
        DrainDue { wheel: self, now }
    }

    /// The due cycle of the earliest pending event, if any.
    ///
    /// Useful for fast-forwarding quiescent simulations.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator returned by [`EventWheel::drain_due`].
#[derive(Debug)]
pub struct DrainDue<'a, T> {
    wheel: &'a mut EventWheel<T>,
    now: Cycle,
}

impl<T> Iterator for DrainDue<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.wheel.pop_due(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_due_order() {
        let mut wheel = EventWheel::new();
        wheel.schedule(Cycle::new(30), 3);
        wheel.schedule(Cycle::new(10), 1);
        wheel.schedule(Cycle::new(20), 2);
        assert_eq!(wheel.pop_due(Cycle::new(100)), Some(1));
        assert_eq!(wheel.pop_due(Cycle::new(100)), Some(2));
        assert_eq!(wheel.pop_due(Cycle::new(100)), Some(3));
        assert_eq!(wheel.pop_due(Cycle::new(100)), None);
    }

    #[test]
    fn does_not_pop_future_events() {
        let mut wheel = EventWheel::new();
        wheel.schedule(Cycle::new(10), "later");
        assert_eq!(wheel.pop_due(Cycle::new(9)), None);
        assert_eq!(wheel.pop_due(Cycle::new(10)), Some("later"));
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut wheel = EventWheel::new();
        for i in 0..50 {
            wheel.schedule(Cycle::new(5), i);
        }
        let order: Vec<i32> = wheel.drain_due(Cycle::new(5)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_due_reports_earliest() {
        let mut wheel = EventWheel::new();
        assert_eq!(wheel.next_due(), None);
        wheel.schedule(Cycle::new(8), ());
        wheel.schedule(Cycle::new(3), ());
        assert_eq!(wheel.next_due(), Some(Cycle::new(3)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut wheel = EventWheel::new();
        assert!(wheel.is_empty());
        wheel.schedule(Cycle::new(1), ());
        assert_eq!(wheel.len(), 1);
        assert!(!wheel.is_empty());
    }

    #[test]
    fn drain_due_stops_at_now() {
        let mut wheel = EventWheel::new();
        wheel.schedule(Cycle::new(1), 1);
        wheel.schedule(Cycle::new(2), 2);
        wheel.schedule(Cycle::new(3), 3);
        let drained: Vec<i32> = wheel.drain_due(Cycle::new(2)).collect();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(wheel.len(), 1);
    }
}
