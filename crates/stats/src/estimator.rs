//! Online statistical estimation for adaptive campaigns: Welford
//! mean/variance accumulation, Chan's two-pass-free merge of partial
//! accumulators, and Student-t 95% confidence intervals from a small
//! hard-coded critical-value table.
//!
//! The adaptive campaign controller folds each seed replica's headline
//! metric into a [`Welford`] accumulator and stops issuing seeds once
//! the 95% CI half-width ([`Welford::ci95_half_width`]) drops below its
//! relative target. Everything here is pure arithmetic over the pushed
//! values — no clock, no I/O, no randomness — so the same values in the
//! same order always produce bit-identical estimates, which is what
//! lets the adaptive artifact stay byte-stable across worker counts.

/// Running mean/variance accumulator (Welford's online algorithm).
///
/// `push` is the numerically stable single-sample update; `merge`
/// combines two partial accumulators without a second pass over the
/// data (Chan et al.'s parallel formula). Merging is associative and
/// order-insensitive up to floating-point rounding — the property
/// tests in this module pin that down — but *not* bit-exact across
/// orders, so determinism-critical consumers fold values in one
/// canonical order instead of merging partials.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (aka `M2`).
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub const fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0 }
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another partial accumulator in (Chan's parallel update):
    /// the result summarizes the concatenation of both sample sets
    /// without revisiting either.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The sample mean (0.0 while empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance; `None` below two samples. Clamped
    /// at zero: `m2` can go infinitesimally negative through merge
    /// rounding.
    pub fn sample_variance(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        Some((self.m2 / (self.n - 1) as f64).max(0.0))
    }

    /// Half-width of the two-sided 95% Student-t confidence interval on
    /// the mean: `t95(n-1) * sqrt(variance / n)`. `None` below two
    /// samples (no variance estimate exists).
    pub fn ci95_half_width(&self) -> Option<f64> {
        let variance = self.sample_variance()?;
        Some(t95(self.n - 1) * (variance / self.n as f64).sqrt())
    }

    /// The point estimate with its CI; `None` below two samples.
    pub fn estimate(&self) -> Option<Estimate> {
        Some(Estimate { mean: self.mean, ci95: self.ci95_half_width()?, n: self.n })
    }
}

/// A point estimate with its 95% CI half-width and sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub mean: f64,
    /// Half-width of the two-sided 95% CI on the mean.
    pub ci95: f64,
    pub n: u64,
}

impl Estimate {
    /// The CI half-width relative to the mean's magnitude. A zero
    /// half-width is 0 regardless of the mean (an exactly-repeatable
    /// metric is as settled as it gets); a zero mean with a nonzero
    /// half-width is infinitely unsettled.
    pub fn relative_half_width(&self) -> f64 {
        if self.ci95 == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95 / self.mean.abs()
        }
    }

    /// Whether the relative half-width meets `rel_target`.
    pub fn meets(&self, rel_target: f64) -> bool {
        self.relative_half_width() <= rel_target
    }
}

/// Two-sided 95% Student-t critical values, indexed by degrees of
/// freedom 1..=30.
const T95_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, //
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, //
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for `df` degrees of
/// freedom, as a conservative step function over a hard-coded table:
/// between tabulated points the value of the *smaller* tabulated df is
/// used, so the returned critical value (and hence the CI) is never
/// narrower than the exact one. `df == 0` (a single sample) has no
/// defined interval; it returns infinity so callers can never declare
/// convergence off one sample.
pub fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95_TABLE[df as usize - 1],
        31..=39 => T95_TABLE[29],
        40..=59 => 2.021,
        60..=119 => 2.000,
        120..=999 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(values: &[f64]) -> Welford {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        w
    }

    #[test]
    fn welford_matches_the_naive_two_pass_formulas() {
        let values = [3.0, 5.0, 4.5, 7.25, 2.0, 6.0];
        let w = fold(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (values.len() - 1) as f64;
        assert_eq!(w.count(), values.len() as u64);
        assert!((w.mean() - mean).abs() < 1e-12, "{} vs {mean}", w.mean());
        let got = w.sample_variance().expect("n >= 2");
        assert!((got - var).abs() < 1e-12, "{got} vs {var}");
    }

    #[test]
    fn small_counts_have_no_variance_or_interval() {
        let mut w = Welford::new();
        assert_eq!(w.sample_variance(), None);
        assert_eq!(w.ci95_half_width(), None);
        assert_eq!(w.estimate(), None);
        w.push(4.0);
        assert_eq!(w.estimate(), None, "one sample estimates nothing");
        w.push(4.0);
        let est = w.estimate().expect("two samples");
        assert_eq!(est.n, 2);
        assert_eq!(est.ci95, 0.0, "identical samples have a zero-width CI");
        assert!(est.meets(0.0), "zero half-width meets any target");
    }

    #[test]
    fn merge_of_disjoint_halves_matches_the_sequential_fold() {
        let values = [1.0, 9.0, 2.5, 4.0, 8.0, 3.0, 7.5];
        for split in 0..=values.len() {
            let mut left = fold(&values[..split]);
            let right = fold(&values[split..]);
            left.merge(&right);
            let all = fold(&values);
            assert_eq!(left.count(), all.count());
            assert!((left.mean() - all.mean()).abs() < 1e-12, "split {split}");
            let (a, b) = (left.sample_variance().unwrap(), all.sample_variance().unwrap());
            assert!((a - b).abs() < 1e-12, "split {split}: {a} vs {b}");
        }
    }

    #[test]
    fn t_table_is_monotone_decreasing_toward_the_normal_limit() {
        assert_eq!(t95(0), f64::INFINITY);
        for df in 1..=200u64 {
            assert!(
                t95(df) >= t95(df + 1),
                "t95 must not increase with df: t95({df})={} < t95({})={}",
                t95(df),
                df + 1,
                t95(df + 1)
            );
        }
        assert!((t95(1) - 12.706).abs() < 1e-12);
        assert!((t95(10_000) - 1.96).abs() < 1e-12);
    }

    #[test]
    fn half_width_shrinks_with_more_samples_at_fixed_spread() {
        // Repeat the same two-point spread: the sample variance stays
        // put while n grows, so the half-width must shrink strictly.
        let mut w = Welford::new();
        let mut last = f64::INFINITY;
        for round in 0..50 {
            w.push(10.0);
            w.push(12.0);
            let hw = w.ci95_half_width().expect("n >= 2");
            assert!(hw < last, "round {round}: {hw} !< {last}");
            last = hw;
        }
        assert!(last < 0.3, "100 samples of ±1 spread settle well under 0.3: {last}");
    }

    #[test]
    fn relative_half_width_handles_zero_means() {
        let zero_mean = Estimate { mean: 0.0, ci95: 1.0, n: 5 };
        assert_eq!(zero_mean.relative_half_width(), f64::INFINITY);
        assert!(!zero_mean.meets(1e9));
        let settled_zero = Estimate { mean: 0.0, ci95: 0.0, n: 5 };
        assert_eq!(settled_zero.relative_half_width(), 0.0);
        assert!(settled_zero.meets(0.0));
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Samples in [0, 8): u32 quantized to keep generation simple.
        fn sample() -> impl Strategy<Value = f64> {
            (0u32..1 << 16).prop_map(|q| f64::from(q) / f64::from(1u32 << 13))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Merging partial accumulators is order-insensitive within
            /// float tolerance: any split point and either merge
            /// direction agree with the sequential fold.
            #[test]
            fn merge_is_order_insensitive(
                values in vec(sample(), 2..40),
                split_sel in any::<u64>(),
            ) {
                let split = (split_sel % (values.len() as u64 + 1)) as usize;
                let all = fold(&values);
                let left = fold(&values[..split]);
                let right = fold(&values[split..]);
                let mut ab = left;
                ab.merge(&right);
                let mut ba = right;
                ba.merge(&left);
                for (tag, merged) in [("l+r", ab), ("r+l", ba)] {
                    prop_assert_eq!(merged.count(), all.count());
                    prop_assert!(
                        (merged.mean() - all.mean()).abs() <= 1e-9 * (1.0 + all.mean().abs()),
                        "{} mean {} vs {}", tag, merged.mean(), all.mean()
                    );
                    let (m, a) = (
                        merged.sample_variance().unwrap_or(0.0),
                        all.sample_variance().unwrap_or(0.0),
                    );
                    prop_assert!(
                        (m - a).abs() <= 1e-9 * (1.0 + a.abs()),
                        "{} variance {} vs {}", tag, m, a
                    );
                }
            }

            /// With a fixed underlying spread, the CI half-width shrinks
            /// monotonically in expectation as n grows: folding the same
            /// sample set in again (variance preserved, n doubled) must
            /// never widen the interval.
            #[test]
            fn doubling_the_sample_never_widens_the_interval(
                values in vec(sample(), 2..40),
            ) {
                let once = fold(&values);
                let mut twice = once;
                twice.merge(&once);
                let (hw1, hw2) = (
                    once.ci95_half_width().unwrap_or(0.0),
                    twice.ci95_half_width().unwrap_or(0.0),
                );
                prop_assert!(
                    hw2 <= hw1 + 1e-12,
                    "doubling n widened the CI: {} -> {}", hw1, hw2
                );
            }
        }
    }
}
