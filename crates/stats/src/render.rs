//! ASCII rendering of phase timelines — the visual form of the paper's
//! Figure 9 execution profiles.

use crate::phases::ThreadPhase;
use crate::timeline::Timeline;
use inpg_sim::Cycle;

/// Renders threads `0..threads` of `timeline` over `[from, to)` as one
/// text row per thread, `width` characters wide.
///
/// Legend: `.` parallel, `#` competition (COH), `$` critical section
/// (CSE), space = finished.
///
/// # Example
///
/// ```
/// use inpg_stats::{render_timeline, ThreadPhase, Timeline};
/// use inpg_sim::Cycle;
///
/// let mut tl = Timeline::new(1);
/// tl.set_phase(0, Cycle::new(50), ThreadPhase::Competition);
/// let rows = render_timeline(&tl, Cycle::ZERO, Cycle::new(100), 1, 10);
/// assert_eq!(rows[0], "t00 .....#####");
/// ```
pub fn render_timeline(
    timeline: &Timeline,
    from: Cycle,
    to: Cycle,
    threads: usize,
    width: usize,
) -> Vec<String> {
    assert!(to > from, "empty window");
    assert!(width > 0, "zero width");
    let span = to - from;
    let threads = threads.min(timeline.threads());
    let mut rows = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut row = format!("t{t:02} ");
        for col in 0..width {
            let at = from + (span * col as u64) / width as u64;
            let glyph = match timeline.phase_at(t, at) {
                ThreadPhase::Parallel => '.',
                ThreadPhase::Competition => '#',
                ThreadPhase::CriticalSection => '$',
                ThreadPhase::Done => ' ',
            };
            row.push(glyph);
        }
        rows.push(row);
    }
    rows
}

/// The legend string matching [`render_timeline`].
pub fn timeline_legend() -> &'static str {
    ". parallel   # competition (COH)   $ critical section (CSE)"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_phases_at_scale() {
        let mut tl = Timeline::new(2);
        tl.set_phase(0, Cycle::new(25), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(75), ThreadPhase::CriticalSection);
        tl.set_phase(1, Cycle::new(50), ThreadPhase::Done);
        let rows = render_timeline(&tl, Cycle::ZERO, Cycle::new(100), 2, 20);
        assert_eq!(rows[0], "t00 .....##########$$$$$");
        assert_eq!(rows[1], "t01 ..........          ");
    }

    #[test]
    fn clamps_thread_count() {
        let tl = Timeline::new(1);
        let rows = render_timeline(&tl, Cycle::ZERO, Cycle::new(10), 8, 5);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let tl = Timeline::new(1);
        render_timeline(&tl, Cycle::new(5), Cycle::new(5), 1, 10);
    }
}
