//! A small integer histogram with a saturating final bucket.

/// Histogram over `u64` samples; bucket `i` counts samples of value `i`,
/// the last bucket saturates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..=cap` (the `cap` bucket
    /// saturates).
    pub fn new(cap: usize) -> Self {
        Histogram { buckets: vec![0; cap + 1], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen (even beyond the saturating bucket).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw buckets.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The smallest value `v` such that at least `pct` (0–100) percent
    /// of samples are `<= v`; saturated samples report the cap.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * pct / 100.0).ceil() as u64;
        let mut seen = 0;
        for (v, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return v as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }

    /// Merges another histogram with the same cap.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "histogram caps differ");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new(16);
        for v in [1, 2, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.max(), 3);
        assert_eq!(h.buckets()[2], 2);
    }

    #[test]
    fn saturates_at_cap() {
        let mut h = Histogram::new(4);
        h.record(100);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(99.0), 99);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(Histogram::new(4).percentile(50.0), 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
    }
}
