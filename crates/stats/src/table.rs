//! Plain-text table rendering for the benchmark harness: every `fig*`
//! binary prints its figure/table as an aligned text table.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use inpg_stats::Table;
/// let mut t = Table::new(vec!["benchmark", "speedup"]);
/// t.add_row(vec!["freqmine".to_string(), "1.35x".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("freqmine"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes), for downstream plotting.
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        let row = |cells: &[String]| {
            cells.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&row(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&row(r));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal (`12.3%`).
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a ratio as a speedup (`1.35x`).
pub fn speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bench"]);
        t.add_row(vec!["1".into(), "x".into()]);
        t.add_row(vec!["22".into(), "yy".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(vec!["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(speedup(1.348), "1.35x");
    }
}
