//! Per-thread phase timelines (the raw material of the paper's Figure 9
//! execution timing profiles).

use crate::phases::ThreadPhase;
use inpg_sim::Cycle;

/// Records phase transitions for every thread, supporting windowed
/// share queries ("of cycles 0–30 000, how many were COH?").
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Per thread: (transition cycle, new phase), in cycle order.
    transitions: Vec<Vec<(Cycle, ThreadPhase)>>,
}

impl Timeline {
    /// Creates a timeline for `threads` threads, all starting in
    /// [`ThreadPhase::Parallel`] at cycle 0.
    pub fn new(threads: usize) -> Self {
        Timeline {
            transitions: (0..threads)
                .map(|_| vec![(Cycle::ZERO, ThreadPhase::Parallel)])
                .collect(),
        }
    }

    /// Number of threads tracked.
    pub fn threads(&self) -> usize {
        self.transitions.len()
    }

    /// Records that `thread` enters `phase` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` precedes the thread's last transition.
    pub fn set_phase(&mut self, thread: usize, cycle: Cycle, phase: ThreadPhase) {
        let log = &mut self.transitions[thread];
        // lint: allow(unwrap) — every per-thread log is seeded with one
        // entry at construction and pops never empty it (see below).
        let (last_cycle, last_phase) = *log.last().expect("timeline starts non-empty");
        assert!(cycle >= last_cycle, "timeline must move forward");
        if last_phase == phase {
            return;
        }
        if cycle == last_cycle {
            // Same-cycle re-transition: replace.
            log.pop();
            if log.last().map(|&(_, p)| p) != Some(phase) {
                log.push((cycle, phase));
            }
        } else {
            log.push((cycle, phase));
        }
    }

    /// The phase `thread` is in at `cycle`.
    pub fn phase_at(&self, thread: usize, cycle: Cycle) -> ThreadPhase {
        let log = &self.transitions[thread];
        match log.binary_search_by(|&(c, _)| c.cmp(&cycle)) {
            Ok(i) => log[i].1,
            Err(0) => log[0].1,
            Err(i) => log[i - 1].1,
        }
    }

    /// The (phase, duration) segments of `thread` clipped to
    /// `[from, to)`.
    pub fn segments(
        &self,
        thread: usize,
        from: Cycle,
        to: Cycle,
    ) -> Vec<(ThreadPhase, u64)> {
        let log = &self.transitions[thread];
        let mut out: Vec<(ThreadPhase, u64)> = Vec::new();
        for (i, &(start, phase)) in log.iter().enumerate() {
            let end = log.get(i + 1).map(|&(c, _)| c).unwrap_or(to);
            let s = start.max(from);
            let e = end.min(to);
            if e > s {
                let dur = e - s;
                if let Some(last) = out.last_mut() {
                    if last.0 == phase {
                        last.1 += dur;
                        continue;
                    }
                }
                out.push((phase, dur));
            }
        }
        out
    }

    /// Cycle shares per phase over `[from, to)` across `threads`
    /// (defaults to all). Returns `(parallel, coh, cse)` fractions of
    /// the live (non-done) cycles.
    pub fn shares(&self, from: Cycle, to: Cycle, threads: Option<usize>) -> (f64, f64, f64) {
        let n = threads.unwrap_or(self.threads()).min(self.threads());
        let mut parallel = 0u64;
        let mut coh = 0u64;
        let mut cse = 0u64;
        for t in 0..n {
            for (phase, dur) in self.segments(t, from, to) {
                match phase {
                    ThreadPhase::Parallel => parallel += dur,
                    ThreadPhase::Competition => coh += dur,
                    ThreadPhase::CriticalSection => cse += dur,
                    ThreadPhase::Done => {}
                }
            }
        }
        let total = (parallel + coh + cse) as f64;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (parallel as f64 / total, coh as f64 / total, cse as f64 / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_parallel() {
        let tl = Timeline::new(2);
        assert_eq!(tl.phase_at(0, Cycle::new(5)), ThreadPhase::Parallel);
        assert_eq!(tl.threads(), 2);
    }

    #[test]
    fn transitions_and_lookup() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(30), ThreadPhase::CriticalSection);
        assert_eq!(tl.phase_at(0, Cycle::new(9)), ThreadPhase::Parallel);
        assert_eq!(tl.phase_at(0, Cycle::new(10)), ThreadPhase::Competition);
        assert_eq!(tl.phase_at(0, Cycle::new(29)), ThreadPhase::Competition);
        assert_eq!(tl.phase_at(0, Cycle::new(31)), ThreadPhase::CriticalSection);
    }

    #[test]
    fn segments_clip_to_window() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(20), ThreadPhase::CriticalSection);
        let segs = tl.segments(0, Cycle::new(5), Cycle::new(25));
        assert_eq!(
            segs,
            vec![
                (ThreadPhase::Parallel, 5),
                (ThreadPhase::Competition, 10),
                (ThreadPhase::CriticalSection, 5),
            ]
        );
    }

    #[test]
    fn duplicate_phase_is_coalesced() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(15), ThreadPhase::Competition);
        let segs = tl.segments(0, Cycle::ZERO, Cycle::new(20));
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn same_cycle_retransition_replaces() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::CriticalSection);
        assert_eq!(tl.phase_at(0, Cycle::new(10)), ThreadPhase::CriticalSection);
        let segs = tl.segments(0, Cycle::ZERO, Cycle::new(20));
        assert_eq!(segs, vec![(ThreadPhase::Parallel, 10), (ThreadPhase::CriticalSection, 10)]);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut tl = Timeline::new(2);
        tl.set_phase(0, Cycle::new(50), ThreadPhase::Competition);
        tl.set_phase(1, Cycle::new(25), ThreadPhase::CriticalSection);
        let (p, c, s) = tl.shares(Cycle::ZERO, Cycle::new(100), None);
        assert!((p + c + s - 1.0).abs() < 1e-9);
        assert!((p - (50.0 + 25.0) / 200.0).abs() < 1e-9);
    }

    #[test]
    fn done_phase_excluded_from_shares() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Done);
        let (p, c, s) = tl.shares(Cycle::ZERO, Cycle::new(100), None);
        assert!((p - 1.0).abs() < 1e-9, "only the live 10 cycles count");
        assert_eq!(c, 0.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    #[should_panic(expected = "move forward")]
    fn backwards_transition_panics() {
        let mut tl = Timeline::new(1);
        tl.set_phase(0, Cycle::new(10), ThreadPhase::Competition);
        tl.set_phase(0, Cycle::new(5), ThreadPhase::Parallel);
    }
}
