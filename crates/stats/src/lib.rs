//! Measurement infrastructure for the iNPG reproduction: per-thread
//! execution phase accounting (parallel / competition / critical
//! section), phase timelines for Figure-9-style profiles, generic
//! histograms, and plain-text table rendering for the benchmark harness.

pub mod estimator;
pub mod histogram;
pub mod phases;
pub mod render;
pub mod table;
pub mod timeline;

pub use estimator::{t95, Estimate, Welford};
pub use histogram::Histogram;
pub use phases::{CsRecord, PhaseCounters, ThreadPhase};
pub use render::{render_timeline, timeline_legend};
pub use table::{pct, speedup, Table};
pub use timeline::Timeline;
