//! Execution phase accounting, following the paper's Figure 9 taxonomy.

use inpg_sim::Cycle;
use std::fmt;

/// The phase a thread is in at a given cycle (paper §5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadPhase {
    /// Concurrent computation (no critical section involved).
    Parallel,
    /// Competing to enter a critical section (the paper's COH phase,
    /// including lock spinning, coherence stalls, sleep and wakeup).
    Competition,
    /// Executing critical-section code, including the release (CSE).
    CriticalSection,
    /// Program finished (excluded from shares).
    Done,
}

impl fmt::Display for ThreadPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ThreadPhase::Parallel => "parallel",
            ThreadPhase::Competition => "COH",
            ThreadPhase::CriticalSection => "CSE",
            ThreadPhase::Done => "done",
        };
        f.write_str(name)
    }
}

/// One completed critical section: how long the thread competed and how
/// long it executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsRecord {
    /// Cycles from `begin_acquire` to `Acquired`.
    pub coh_cycles: u64,
    /// Cycles from `Acquired` to `Released`.
    pub cse_cycles: u64,
    /// Cycle at which the critical section was released.
    pub finished_at: Cycle,
}

/// Per-thread cycle accounting.
#[derive(Debug, Clone, Default)]
pub struct PhaseCounters {
    /// Cycles spent in each phase.
    pub parallel_cycles: u64,
    /// Competition overhead cycles (COH).
    pub coh_cycles: u64,
    /// Critical-section execution cycles (CSE).
    pub cse_cycles: u64,
    /// Of the COH cycles, those spent descheduled (QSL sleep + context
    /// switches).
    pub sleep_cycles: u64,
    /// Completed critical sections.
    pub cs_records: Vec<CsRecord>,
}

impl PhaseCounters {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the bucket for `phase`.
    pub fn add(&mut self, phase: ThreadPhase, cycles: u64) {
        match phase {
            ThreadPhase::Parallel => self.parallel_cycles += cycles,
            ThreadPhase::Competition => self.coh_cycles += cycles,
            ThreadPhase::CriticalSection => self.cse_cycles += cycles,
            ThreadPhase::Done => {}
        }
    }

    /// Records a completed critical section.
    pub fn record_cs(&mut self, record: CsRecord) {
        self.cs_records.push(record);
    }

    /// Total accounted cycles (excluding `Done`).
    pub fn total(&self) -> u64 {
        self.parallel_cycles + self.coh_cycles + self.cse_cycles
    }

    /// Completed critical sections.
    pub fn cs_count(&self) -> usize {
        self.cs_records.len()
    }

    /// Sum of competition overhead across completed critical sections.
    pub fn total_cs_coh(&self) -> u64 {
        self.cs_records.iter().map(|r| r.coh_cycles).sum()
    }

    /// Sum of execution time across completed critical sections.
    pub fn total_cs_cse(&self) -> u64 {
        self.cs_records.iter().map(|r| r.cse_cycles).sum()
    }

    /// Merges another thread's counters into this one (for aggregates).
    pub fn merge(&mut self, other: &PhaseCounters) {
        self.parallel_cycles += other.parallel_cycles;
        self.coh_cycles += other.coh_cycles;
        self.cse_cycles += other.cse_cycles;
        self.sleep_cycles += other.sleep_cycles;
        self.cs_records.extend(other.cs_records.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_routes_to_buckets() {
        let mut c = PhaseCounters::new();
        c.add(ThreadPhase::Parallel, 10);
        c.add(ThreadPhase::Competition, 20);
        c.add(ThreadPhase::CriticalSection, 5);
        c.add(ThreadPhase::Done, 99);
        assert_eq!(c.parallel_cycles, 10);
        assert_eq!(c.coh_cycles, 20);
        assert_eq!(c.cse_cycles, 5);
        assert_eq!(c.total(), 35);
    }

    #[test]
    fn cs_records_accumulate() {
        let mut c = PhaseCounters::new();
        c.record_cs(CsRecord { coh_cycles: 100, cse_cycles: 30, finished_at: Cycle::new(500) });
        c.record_cs(CsRecord { coh_cycles: 50, cse_cycles: 40, finished_at: Cycle::new(900) });
        assert_eq!(c.cs_count(), 2);
        assert_eq!(c.total_cs_coh(), 150);
        assert_eq!(c.total_cs_cse(), 70);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = PhaseCounters::new();
        a.add(ThreadPhase::Parallel, 1);
        let mut b = PhaseCounters::new();
        b.add(ThreadPhase::Parallel, 2);
        b.record_cs(CsRecord { coh_cycles: 7, cse_cycles: 3, finished_at: Cycle::new(10) });
        a.merge(&b);
        assert_eq!(a.parallel_cycles, 3);
        assert_eq!(a.cs_count(), 1);
    }

    #[test]
    fn phase_display_names() {
        assert_eq!(ThreadPhase::Competition.to_string(), "COH");
        assert_eq!(ThreadPhase::CriticalSection.to_string(), "CSE");
    }
}
