//! Turns benchmark signatures into per-thread programs.

use crate::spec::BenchmarkSpec;
use inpg_manycore::ThreadProgram;
use inpg_sim::{LockId, SimRng};

/// Workload generation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenOptions {
    /// Threads (= cores) to generate for.
    pub threads: usize,
    /// Scales the number of critical sections per thread. 1.0 runs the
    /// full Figure-8 counts; smaller values keep unit tests and sweeps
    /// fast while preserving contention structure.
    pub scale: f64,
    /// Deterministic seed for compute jitter and lock selection.
    pub seed: u64,
}

const DEFAULT_SEED: u64 = 0x16_9e_47_11;

impl GenOptions {
    /// Full-scale options for `threads` threads with the default seed.
    pub fn full(threads: usize) -> Self {
        GenOptions { threads, scale: 1.0, seed: DEFAULT_SEED }
    }

    /// Scaled-down options (same structure, fewer critical sections).
    pub fn scaled(threads: usize, scale: f64) -> Self {
        GenOptions { threads, scale, seed: DEFAULT_SEED }
    }
}

/// Generates one program per thread for `spec`.
///
/// Every thread executes `ceil(scale * total_cs / threads)` rounds of
/// jittered parallel compute followed by a critical section; locks are
/// picked per round from the benchmark's lock set (uniformly, seeded).
///
/// # Panics
///
/// Panics if `threads` is zero or `scale` is not positive.
pub fn generate(spec: &BenchmarkSpec, options: GenOptions) -> Vec<ThreadProgram> {
    assert!(options.threads > 0, "at least one thread");
    assert!(options.scale > 0.0, "scale must be positive");
    let mut rng = SimRng::seed_from_u64(options.seed ^ hash_name(spec.name));
    let per_thread =
        (((spec.total_cs as f64) * options.scale / options.threads as f64).ceil() as u64).max(1);
    let mut programs = Vec::with_capacity(options.threads);
    for _ in 0..options.threads {
        let mut thread_rng = rng.fork();
        let mut program = ThreadProgram::new();
        for _ in 0..per_thread {
            let compute = jitter(&mut thread_rng, spec.compute_per_round, spec.jitter_pct);
            let cs = jitter(&mut thread_rng, spec.avg_cs_cycles, spec.jitter_pct / 2);
            let lock = if spec.locks == 1 {
                0
            } else {
                thread_rng.next_below(spec.locks as u64) as usize
            };
            program = program.compute(compute).critical(LockId::new(lock), cs);
        }
        programs.push(program);
    }
    programs
}

/// Number of locks the generated programs reference.
pub fn locks_needed(spec: &BenchmarkSpec) -> usize {
    spec.locks
}

fn jitter(rng: &mut SimRng, mean: u64, pct: u8) -> u64 {
    if pct == 0 || mean == 0 {
        return mean.max(1);
    }
    let span = mean * pct as u64 / 100;
    let lo = mean.saturating_sub(span).max(1);
    let hi = mean + span;
    rng.next_range(lo, hi)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a over the name, so each benchmark gets a distinct stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    fn opts(threads: usize, scale: f64) -> GenOptions {
        GenOptions { threads, scale, seed: DEFAULT_SEED }
    }

    #[test]
    fn generates_one_program_per_thread() {
        let spec = benchmark("fluid").unwrap();
        let programs = generate(spec, opts(16, 0.1));
        assert_eq!(programs.len(), 16);
        let per_thread = (10_240.0_f64 * 0.1 / 16.0).ceil() as usize;
        for p in &programs {
            assert_eq!(p.cs_count(), per_thread);
        }
    }

    #[test]
    fn full_scale_matches_figure8_counts() {
        let spec = benchmark("imag").unwrap();
        let programs = generate(spec, GenOptions { threads: 64, scale: 1.0, seed: 1 });
        let total: usize = programs.iter().map(|p| p.cs_count()).sum();
        // ceil(4000/64)*64 = 4032; within one round per thread of spec.
        assert!((4_000..=4_000 + 64).contains(&total), "total={total}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = benchmark("freq").unwrap();
        let a = generate(spec, opts(8, 0.05));
        let b = generate(spec, opts(8, 0.05));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = benchmark("freq").unwrap();
        let a = generate(spec, GenOptions { threads: 8, scale: 0.05, seed: 1 });
        let b = generate(spec, GenOptions { threads: 8, scale: 0.05, seed: 2 });
        assert_ne!(a, b);
    }

    #[test]
    fn lock_ids_stay_in_range() {
        let spec = benchmark("can").unwrap();
        let programs = generate(spec, opts(8, 0.2));
        for p in &programs {
            if let Some(max) = p.max_lock() {
                assert!(max.index() < spec.locks);
            }
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = jitter(&mut rng, 100, 30);
            assert!((70..=130).contains(&v));
        }
        assert_eq!(jitter(&mut rng, 0, 30), 1, "zero mean clamps to one cycle");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        generate(benchmark("fluid").unwrap(), opts(4, 0.0));
    }
}
