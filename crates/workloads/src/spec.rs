//! The 24 benchmark models: 10 PARSEC + 14 SPEC OMP2012 programs,
//! parameterized by their critical-section signatures.
//!
//! The paper's evaluation depends on each program's CS signature — how
//! many critical sections it executes, how long each takes, and how much
//! parallel work separates them (Figure 8). We cannot run the real
//! binaries (no Gem5 full-system stack here), so each program is modelled
//! by a synthetic signature chosen to be consistent with every number the
//! paper's text reports:
//!
//! * `fluidanimate`: 10 240 critical sections of ~81 cycles (§5.2.1);
//! * `imagick`: 4 000 critical sections of ~179 cycles (§5.2.1);
//! * group sizes 6 / 12 / 6 when sorted by total CS time (Figure 8b);
//! * `kdtree`, `facesim`, `fluidanimate` are the high-LCO programs of
//!   Figure 2; `freqmine` shows ~28% COH in the Original profile
//!   (Figure 9); `nab`, `bt331`, `dedup` are the benchmarks where the
//!   various mechanisms peak (Figures 11–12).

use std::fmt;

/// Benchmark suite a program belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// PARSEC (10 programs, large inputs; blackscholes and swaptions are
    /// excluded as in the paper).
    Parsec,
    /// SPEC OMP2012 (all 14 programs).
    Omp2012,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Parsec => f.write_str("PARSEC"),
            Suite::Omp2012 => f.write_str("SPEC OMP2012"),
        }
    }
}

/// The CS-time group of Figure 8b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CsGroup {
    /// Lowest total CS execution time (6 programs).
    Low,
    /// Medium (12 programs).
    Medium,
    /// Highest (6 programs).
    High,
}

impl fmt::Display for CsGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsGroup::Low => f.write_str("Group 1"),
            CsGroup::Medium => f.write_str("Group 2"),
            CsGroup::High => f.write_str("Group 3"),
        }
    }
}

/// One benchmark's synthetic signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Program name (short form where the paper abbreviates).
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Total critical sections across all threads (Figure 8a).
    pub total_cs: u64,
    /// Mean CPU cycles per critical section (Figure 8a).
    pub avg_cs_cycles: u64,
    /// Distinct lock variables protecting the critical sections.
    pub locks: usize,
    /// Mean parallel compute cycles between consecutive CS entries of
    /// one thread.
    pub compute_per_round: u64,
    /// Compute jitter in percent (uniform +/-).
    pub jitter_pct: u8,
}

impl BenchmarkSpec {
    /// Total CS execution time proxy (count x mean cycles), the sorting
    /// key of Figure 8b.
    pub fn total_cs_time(&self) -> u64 {
        self.total_cs * self.avg_cs_cycles
    }
}

/// All 24 programs. Order: PARSEC then OMP2012, as in the paper's plots.
pub const BENCHMARKS: [BenchmarkSpec; 24] = [
    // ---- PARSEC (10) --------------------------------------------------
    BenchmarkSpec { name: "body", suite: Suite::Parsec, total_cs: 2_560, avg_cs_cycles: 95, locks: 4, compute_per_round: 3590, jitter_pct: 30 },
    BenchmarkSpec { name: "can", suite: Suite::Parsec, total_cs: 2176, avg_cs_cycles: 110, locks: 8, compute_per_round: 2100, jitter_pct: 40 },
    BenchmarkSpec { name: "dedup", suite: Suite::Parsec, total_cs: 4_480, avg_cs_cycles: 120, locks: 4, compute_per_round: 3850, jitter_pct: 30 },
    BenchmarkSpec { name: "face", suite: Suite::Parsec, total_cs: 8_320, avg_cs_cycles: 105, locks: 1, compute_per_round: 10220, jitter_pct: 20 },
    BenchmarkSpec { name: "ferret", suite: Suite::Parsec, total_cs: 2304, avg_cs_cycles: 90, locks: 8, compute_per_round: 2000, jitter_pct: 40 },
    BenchmarkSpec { name: "fluid", suite: Suite::Parsec, total_cs: 10_240, avg_cs_cycles: 81, locks: 2, compute_per_round: 4770, jitter_pct: 20 },
    BenchmarkSpec { name: "freq", suite: Suite::Parsec, total_cs: 5_760, avg_cs_cycles: 130, locks: 2, compute_per_round: 9000, jitter_pct: 25 },
    BenchmarkSpec { name: "stream", suite: Suite::Parsec, total_cs: 3_200, avg_cs_cycles: 100, locks: 4, compute_per_round: 3640, jitter_pct: 30 },
    BenchmarkSpec { name: "vips", suite: Suite::Parsec, total_cs: 1920, avg_cs_cycles: 85, locks: 8, compute_per_round: 2000, jitter_pct: 40 },
    BenchmarkSpec { name: "x264", suite: Suite::Parsec, total_cs: 2176, avg_cs_cycles: 95, locks: 8, compute_per_round: 2050, jitter_pct: 40 },
    // ---- SPEC OMP2012 (14) --------------------------------------------
    BenchmarkSpec { name: "md", suite: Suite::Omp2012, total_cs: 3_840, avg_cs_cycles: 140, locks: 2, compute_per_round: 8110, jitter_pct: 25 },
    BenchmarkSpec { name: "bwaves", suite: Suite::Omp2012, total_cs: 2_880, avg_cs_cycles: 125, locks: 4, compute_per_round: 3900, jitter_pct: 30 },
    BenchmarkSpec { name: "nab", suite: Suite::Omp2012, total_cs: 9_600, avg_cs_cycles: 115, locks: 1, compute_per_round: 10510, jitter_pct: 20 },
    BenchmarkSpec { name: "bt331", suite: Suite::Omp2012, total_cs: 8_960, avg_cs_cycles: 102, locks: 1, compute_per_round: 10140, jitter_pct: 20 },
    BenchmarkSpec { name: "botsalgn", suite: Suite::Omp2012, total_cs: 2048, avg_cs_cycles: 100, locks: 8, compute_per_round: 2100, jitter_pct: 40 },
    BenchmarkSpec { name: "botsspar", suite: Suite::Omp2012, total_cs: 3_520, avg_cs_cycles: 118, locks: 4, compute_per_round: 3830, jitter_pct: 30 },
    BenchmarkSpec { name: "ilbdc", suite: Suite::Omp2012, total_cs: 2_560, avg_cs_cycles: 135, locks: 4, compute_per_round: 4000, jitter_pct: 30 },
    BenchmarkSpec { name: "fma3d", suite: Suite::Omp2012, total_cs: 4_160, avg_cs_cycles: 128, locks: 2, compute_per_round: 7860, jitter_pct: 25 },
    BenchmarkSpec { name: "swim", suite: Suite::Omp2012, total_cs: 1792, avg_cs_cycles: 105, locks: 8, compute_per_round: 2150, jitter_pct: 40 },
    BenchmarkSpec { name: "imag", suite: Suite::Omp2012, total_cs: 4_000, avg_cs_cycles: 179, locks: 2, compute_per_round: 8920, jitter_pct: 25 },
    BenchmarkSpec { name: "mgrid331", suite: Suite::Omp2012, total_cs: 3_072, avg_cs_cycles: 122, locks: 4, compute_per_round: 3870, jitter_pct: 30 },
    BenchmarkSpec { name: "applu331", suite: Suite::Omp2012, total_cs: 2_688, avg_cs_cycles: 130, locks: 4, compute_per_round: 3950, jitter_pct: 30 },
    BenchmarkSpec { name: "smithwa", suite: Suite::Omp2012, total_cs: 4_224, avg_cs_cycles: 112, locks: 2, compute_per_round: 7530, jitter_pct: 25 },
    BenchmarkSpec { name: "kdtree", suite: Suite::Omp2012, total_cs: 7_680, avg_cs_cycles: 98, locks: 1, compute_per_round: 10020, jitter_pct: 20 },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static BenchmarkSpec> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The Figure 8b grouping: benchmarks sorted ascending by total CS time,
/// split 6 / 12 / 6.
pub fn group_of(spec: &BenchmarkSpec) -> CsGroup {
    let mut order: Vec<&BenchmarkSpec> = BENCHMARKS.iter().collect();
    order.sort_by_key(|b| (b.total_cs_time(), b.name));
    let rank = order
        .iter()
        .position(|b| b.name == spec.name)
        .expect("spec comes from BENCHMARKS");
    match rank {
        0..=5 => CsGroup::Low,
        6..=17 => CsGroup::Medium,
        _ => CsGroup::High,
    }
}

/// Benchmarks in a given group.
pub fn benchmarks_in(group: CsGroup) -> Vec<&'static BenchmarkSpec> {
    BENCHMARKS.iter().filter(|b| group_of(b) == group).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_unique_programs() {
        let mut names: Vec<&str> = BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
        assert_eq!(BENCHMARKS.iter().filter(|b| b.suite == Suite::Parsec).count(), 10);
        assert_eq!(BENCHMARKS.iter().filter(|b| b.suite == Suite::Omp2012).count(), 14);
    }

    #[test]
    fn paper_anchor_points() {
        let fluid = benchmark("fluid").unwrap();
        assert_eq!(fluid.total_cs, 10_240);
        assert_eq!(fluid.avg_cs_cycles, 81);
        let imag = benchmark("imag").unwrap();
        assert_eq!(imag.total_cs, 4_000);
        assert_eq!(imag.avg_cs_cycles, 179);
    }

    #[test]
    fn groups_are_6_12_6() {
        assert_eq!(benchmarks_in(CsGroup::Low).len(), 6);
        assert_eq!(benchmarks_in(CsGroup::Medium).len(), 12);
        assert_eq!(benchmarks_in(CsGroup::High).len(), 6);
    }

    #[test]
    fn high_contention_benchmarks_are_group_three() {
        for name in ["fluid", "face", "kdtree", "nab", "bt331", "freq"] {
            let spec = benchmark(name).unwrap();
            assert_eq!(group_of(spec), CsGroup::High, "{name}");
        }
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(benchmark("blackscholes").is_none(), "excluded in the paper");
    }
}
