//! Microbenchmark workloads: minimal, fully-controlled contention
//! patterns used by examples, tests and the Figure-10 experiment.

use inpg_manycore::ThreadProgram;
use inpg_sim::LockId;

/// Every thread hammers one lock: `rounds` iterations of
/// `compute`-cycle parallel work followed by a `cs_cycles` critical
/// section. This is the all-64-threads-compete scenario of Figure 10.
pub fn hot_lock(threads: usize, rounds: usize, compute: u64, cs_cycles: u64) -> Vec<ThreadProgram> {
    (0..threads)
        .map(|_| ThreadProgram::new().rounds(rounds, compute, LockId::new(0), cs_cycles))
        .collect()
}

/// Threads are split evenly over `locks` independent locks — low
/// contention per lock, used to check that iNPG does not hurt
/// uncontended synchronization.
pub fn partitioned(
    threads: usize,
    locks: usize,
    rounds: usize,
    compute: u64,
    cs_cycles: u64,
) -> Vec<ThreadProgram> {
    assert!(locks > 0, "at least one lock");
    (0..threads)
        .map(|t| {
            ThreadProgram::new().rounds(rounds, compute, LockId::new(t % locks), cs_cycles)
        })
        .collect()
}

/// A staggered start: thread `t` computes `t * stagger` cycles before
/// its first critical section, producing a steady arrival stream rather
/// than a thundering herd.
pub fn staggered(
    threads: usize,
    stagger: u64,
    rounds: usize,
    compute: u64,
    cs_cycles: u64,
) -> Vec<ThreadProgram> {
    (0..threads)
        .map(|t| {
            ThreadProgram::new()
                .compute(stagger * t as u64 + 1)
                .rounds(rounds, compute, LockId::new(0), cs_cycles)
        })
        .collect()
}

/// Pure parallel compute with no synchronization at all (the sanity
/// baseline: every mechanism must leave it untouched).
pub fn embarrassingly_parallel(threads: usize, compute: u64) -> Vec<ThreadProgram> {
    (0..threads).map(|_| ThreadProgram::new().compute(compute)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_lock_shapes() {
        let programs = hot_lock(8, 3, 100, 10);
        assert_eq!(programs.len(), 8);
        assert!(programs.iter().all(|p| p.cs_count() == 3));
        assert!(programs.iter().all(|p| p.max_lock() == Some(LockId::new(0))));
    }

    #[test]
    fn partitioned_spreads_locks() {
        let programs = partitioned(8, 4, 2, 50, 5);
        let locks: std::collections::HashSet<_> =
            programs.iter().filter_map(|p| p.max_lock()).collect();
        assert_eq!(locks.len(), 4);
    }

    #[test]
    fn staggered_prefixes_grow() {
        let programs = staggered(4, 100, 1, 10, 5);
        let first_compute = |p: &ThreadProgram| match p.segments()[0] {
            inpg_manycore::Segment::Compute(c) => c,
            _ => panic!("first segment is compute"),
        };
        assert_eq!(first_compute(&programs[0]), 1);
        assert_eq!(first_compute(&programs[3]), 301);
    }

    #[test]
    fn parallel_has_no_locks() {
        let programs = embarrassingly_parallel(4, 1000);
        assert!(programs.iter().all(|p| p.max_lock().is_none()));
    }
}
