//! Synthetic workload models of the paper's 24 evaluation programs
//! (10 PARSEC + 14 SPEC OMP2012), plus microbenchmarks.
//!
//! The real programs cannot run here (they need a full-system Gem5
//! stack); instead each program is reduced to its *critical-section
//! signature* — total CS count, mean cycles per CS, lock count, and
//! inter-CS compute — which is exactly the structure the paper's
//! evaluation depends on (Figure 8). `DESIGN.md` documents the
//! substitution and the anchor numbers taken from the paper's text.
//!
//! # Example
//!
//! ```
//! use inpg_workloads::{benchmark, generate, GenOptions};
//!
//! let spec = benchmark("freq").expect("freqmine is modelled");
//! let programs = generate(spec, GenOptions::scaled(16, 0.05));
//! assert_eq!(programs.len(), 16);
//! assert!(programs[0].cs_count() > 0);
//! ```

pub mod gen;
pub mod micro;
pub mod spec;

pub use gen::{generate, locks_needed, GenOptions};
pub use spec::{benchmark, benchmarks_in, group_of, BenchmarkSpec, CsGroup, Suite, BENCHMARKS};
