//! `inpg-analysis` — exhaustive model checking of the iNPG protocol
//! state machines over bounded configurations.
//!
//! ```text
//! cargo run --release -p inpg-analysis -- --cores 3 --lines 1 --barrier on
//! ```
//!
//! Exit codes: `0` all properties hold (exhaustive up to the in-flight
//! message bound), `1` violation found (counterexample printed), `2`
//! usage error, `3` inconclusive (state bound hit; rerun with a larger
//! `--max-states`).

use inpg_analysis::{check, BugSeed, Config, Verdict};
use std::process::ExitCode;

const USAGE: &str = "\
usage: inpg-analysis [options]
  --cores N           cores / home banks (2..=4, default 2)
  --lines N           contended lock lines (1..=2, default 1)
  --rounds N          acquire/release rounds per core per line (default 1)
  --barrier on|off    iNPG big-router interception (default on)
  --seed-bug KIND     none | drop-relayed-ack | dup-inv-ack (default none)
  --net-cap N         in-flight message bound (default 4*cores+4)
  --max-issues N      wire-issue (retry) bound per core per phase
                      (default 3 at 2 cores, 1 at 3..=4 cores)
  --max-states N      state bound before giving up (default 4000000)
  --lossy             lossy-channel semantics: the adversary may drop
                      InvAck/GetX messages and wedged cores recover by
                      abort-and-reissue (models the --recover layer)
  --max-drops N       messages the adversary may drop (default 1)
  --retry-budget N    recovery retransmissions per core (default 2;
                      keep it above --max-drops so recovery outlasts
                      the adversary)
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cores = 2usize;
    let mut lines = 1usize;
    let mut rounds = 1usize;
    let mut barrier = true;
    let mut bug = BugSeed::None;
    let mut net_cap: Option<usize> = None;
    let mut max_issues: Option<u8> = None;
    let mut max_states = 4_000_000usize;
    let mut lossy = false;
    let mut max_drops: Option<u8> = None;
    let mut retry_budget: Option<u8> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cores" => {
                cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?;
            }
            "--lines" => {
                lines = value("--lines")?
                    .parse()
                    .map_err(|e| format!("--lines: {e}"))?;
            }
            "--rounds" => {
                rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--barrier" => {
                barrier = match value("--barrier")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--barrier must be on|off, got {other}")),
                };
            }
            "--seed-bug" => {
                let spec = value("--seed-bug")?;
                bug = BugSeed::parse(&spec)
                    .ok_or_else(|| format!("unknown --seed-bug {spec}"))?;
            }
            "--net-cap" => {
                net_cap = Some(
                    value("--net-cap")?
                        .parse()
                        .map_err(|e| format!("--net-cap: {e}"))?,
                );
            }
            "--max-issues" => {
                max_issues = Some(
                    value("--max-issues")?
                        .parse()
                        .map_err(|e| format!("--max-issues: {e}"))?,
                );
            }
            "--max-states" => {
                max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?;
            }
            "--lossy" => lossy = true,
            "--max-drops" => {
                max_drops = Some(
                    value("--max-drops")?
                        .parse()
                        .map_err(|e| format!("--max-drops: {e}"))?,
                );
            }
            "--retry-budget" => {
                retry_budget = Some(
                    value("--retry-budget")?
                        .parse()
                        .map_err(|e| format!("--retry-budget: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(2..=4).contains(&cores) {
        return Err(format!("--cores must be 2..=4, got {cores}"));
    }
    if !(1..=2).contains(&lines) {
        return Err(format!("--lines must be 1..=2, got {lines}"));
    }
    if rounds == 0 || rounds > 3 {
        return Err(format!("--rounds must be 1..=3, got {rounds}"));
    }
    let mut cfg = Config::bounded(cores, lines, barrier);
    cfg.rounds = rounds;
    cfg.bug = bug;
    if let Some(cap) = net_cap {
        cfg.net_cap = cap;
    }
    if let Some(cap) = max_issues {
        if cap == 0 {
            return Err("--max-issues must be at least 1".to_string());
        }
        cfg.max_issues = cap;
    }
    cfg.max_states = max_states;
    cfg.lossy = lossy;
    if let Some(drops) = max_drops {
        cfg.max_drops = drops;
    }
    if let Some(budget) = retry_budget {
        cfg.retry_budget = budget;
    }
    if (max_drops.is_some() || retry_budget.is_some()) && !lossy {
        return Err("--max-drops/--retry-budget require --lossy".to_string());
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "model-checking: {} cores, {} line(s), {} round(s), barrier {}, bug seed {:?}{}",
        cfg.cores,
        cfg.lines,
        cfg.rounds,
        if cfg.barrier { "on" } else { "off" },
        cfg.bug,
        if cfg.lossy {
            format!(", lossy (≤{} drops, {} retries/core)", cfg.max_drops, cfg.retry_budget)
        } else {
            String::new()
        },
    );

    match check(&cfg) {
        Verdict::Pass(report) => {
            println!(
                "PASS: {} reachable states, {} transitions, {} goal states, \
                 {} horizon states, depth {}",
                report.states,
                report.transitions,
                report.goal_states,
                report.horizon_states,
                report.depth
            );
            if report.truncated {
                println!(
                    "INCONCLUSIVE: state bound hit ({} pruned) — raise --max-states",
                    report.pruned
                );
                return ExitCode::from(3);
            }
            if report.pruned > 0 {
                println!(
                    "note: {} boundary transitions pruned — the verdict covers every \
                     execution with at most net-cap in-flight messages",
                    report.pruned
                );
            }
            println!(
                "properties verified: SWMR, value integrity, mutual exclusion, \
                 inv/ack conservation, deadlock freedom"
            );
            ExitCode::SUCCESS
        }
        Verdict::Fail(cex) => {
            println!(
                "FAIL after {} states: {}",
                cex.states_explored, cex.property
            );
            print!("{}", cex.render(&cfg));
            ExitCode::from(1)
        }
    }
}
