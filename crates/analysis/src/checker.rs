//! Breadth-first exhaustive enumeration of the bounded world's state
//! space, with shortest-counterexample reconstruction.
//!
//! The search keeps full [`World`] values only on the BFS frontier;
//! visited states are remembered by a 128-bit double fingerprint (two
//! independently salted SipHash runs), which keeps memory at ~tens of
//! bytes per state. A fingerprint collision could in principle hide a
//! state; at the bounded sizes this tool targets (≤ a few million
//! states) the collision probability is below 10⁻²⁰ and the trade is
//! worth it.

use crate::world::{Config, Label, Property, World};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Statistics of one completed (or truncated) enumeration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct reachable states discovered.
    pub states: u64,
    /// Transitions applied (edges of the reachability graph).
    pub transitions: u64,
    /// Transitions pruned by the in-flight message bound. The verdict
    /// is exhaustive *relative to that bound*: every execution whose
    /// in-flight count stays within `net_cap` is covered. (Failable-CAS
    /// retry laps can park unboundedly many stale acks in flight, so
    /// some bound is inherent to the model.)
    pub pruned: u64,
    /// Legal final states reached.
    pub goal_states: u64,
    /// Non-final leaves cut off by a per-core budget — wire issues
    /// (`max_issues`) or, in lossy mode, recovery retransmissions
    /// (`retry_budget`) — excluded from deadlock detection.
    pub horizon_states: u64,
    /// Longest shortest-path distance from the initial state.
    pub depth: u32,
    /// `true` when the `max_states` bound stopped discovery early; the
    /// pass verdict is then inconclusive.
    pub truncated: bool,
}

/// A minimized (shortest, by BFS order) trace to a property violation.
#[derive(Debug)]
pub struct Counterexample {
    /// The violated property.
    pub property: Property,
    /// The transition sequence from the initial state.
    pub steps: Vec<Label>,
    /// States discovered before the violation was found.
    pub states_explored: u64,
}

impl Counterexample {
    /// Renders the trace by replaying it from the initial state,
    /// printing one transition and the resulting compact state per
    /// line, ending with the violated property.
    pub fn render(&self, cfg: &Config) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut world = World::init(cfg);
        let _ = writeln!(out, "counterexample ({} steps):", self.steps.len());
        let _ = writeln!(out, "  init: {}", world.summary(cfg));
        for (i, step) in self.steps.iter().enumerate() {
            let violated = world.apply(cfg, step).err();
            world.canon();
            let _ = writeln!(out, "  {:>3}. {step}", i + 1);
            let _ = writeln!(out, "       {}", world.summary(cfg));
            if let Some(p) = violated {
                let _ = writeln!(out, "violated: {p}");
                return out;
            }
            if let Some(p) = world.check_safety(cfg) {
                let _ = writeln!(out, "violated: {p}");
                return out;
            }
        }
        // Deadlocks violate at the final *state*, not on a transition.
        let _ = writeln!(out, "violated: {}", self.property);
        out
    }
}

/// The outcome of one enumeration.
#[derive(Debug)]
pub enum Verdict {
    /// Every reachable state satisfies every property (exhaustive only
    /// if `report.pruned == 0 && !report.truncated`).
    Pass(Report),
    /// A property violation was found; the trace is minimal.
    Fail(Box<Counterexample>),
}

fn fingerprint(world: &World) -> (u64, u64) {
    let mut a = DefaultHasher::new();
    0xa5a5_5a5a_u64.hash(&mut a);
    world.hash(&mut a);
    let mut b = DefaultHasher::new();
    0x1234_fedc_9876_u64.hash(&mut b);
    world.hash(&mut b);
    (a.finish(), b.finish())
}

/// Walks the parent chain back to the initial state, returning the
/// label sequence root → `idx`.
fn trace_to(idx: u32, parents: &[(u32, Option<Label>)]) -> Vec<Label> {
    let mut steps = Vec::new();
    let mut cur = idx;
    while let (parent, Some(label)) = &parents[cur as usize] {
        steps.push(label.clone());
        cur = *parent;
    }
    steps.reverse();
    steps
}

/// Exhaustively enumerates the reachable states of `cfg`'s bounded
/// world, checking every property in every state.
pub fn check(cfg: &Config) -> Verdict {
    let mut init = World::init(cfg);
    init.canon();

    let mut visited: HashMap<(u64, u64), u32> = HashMap::new();
    // Parent index + the label that discovered each state (None = root).
    let mut parents: Vec<(u32, Option<Label>)> = Vec::new();
    let mut depths: Vec<u32> = Vec::new();
    let mut frontier: VecDeque<(u32, World)> = VecDeque::new();

    visited.insert(fingerprint(&init), 0);
    parents.push((0, None));
    depths.push(0);
    frontier.push_back((0, init));

    let mut transitions = 0u64;
    let mut pruned = 0u64;
    let mut goal_states = 0u64;
    let mut horizon_states = 0u64;
    let mut max_depth = 0u32;
    let mut truncated = false;

    while let Some((idx, world)) = frontier.pop_front() {
        if world.is_goal() {
            goal_states += 1;
            if let Some(property) = world.check_quiescence() {
                return Verdict::Fail(Box::new(Counterexample {
                    property,
                    steps: trace_to(idx, &parents),
                    states_explored: parents.len() as u64,
                }));
            }
        }
        let labels = world.enabled(cfg);
        if labels.is_empty() && !world.is_goal() {
            // A state cut off by a budget is a horizon of the bounded
            // search, not a deadlock: some idle core merely ran out of
            // wire issues for its current attempt, or (lossy mode) a
            // wedged core exhausted its recovery retransmissions.
            let at_horizon = world.scripts.iter().enumerate().any(|(c, s)| {
                !s.done && !world.l1s[c].is_busy() && s.issues >= cfg.max_issues
            }) || (cfg.lossy
                && world.scripts.iter().enumerate().any(|(c, s)| {
                    s.retries >= cfg.retry_budget && world.wedged(c)
                }));
            if at_horizon {
                horizon_states += 1;
                continue;
            }
            return Verdict::Fail(Box::new(Counterexample {
                property: Property::Deadlock,
                steps: trace_to(idx, &parents),
                states_explored: parents.len() as u64,
            }));
        }
        for label in labels {
            let mut next = world.clone();
            if let Err(property) = next.apply(cfg, &label) {
                let mut steps = trace_to(idx, &parents);
                steps.push(label);
                return Verdict::Fail(Box::new(Counterexample {
                    property,
                    steps,
                    states_explored: parents.len() as u64,
                }));
            }
            transitions += 1;
            if next.net.len() > cfg.net_cap {
                pruned += 1;
                continue;
            }
            next.canon();
            if let Some(property) = next.check_safety(cfg) {
                let mut steps = trace_to(idx, &parents);
                steps.push(label);
                return Verdict::Fail(Box::new(Counterexample {
                    property,
                    steps,
                    states_explored: parents.len() as u64,
                }));
            }
            let fp = fingerprint(&next);
            if visited.contains_key(&fp) {
                continue;
            }
            if parents.len() >= cfg.max_states {
                truncated = true;
                continue;
            }
            let id = parents.len() as u32;
            // State-explosion diagnostics: INPG_CHECK_SAMPLE=1 prints
            // every 200k-th discovered state so a blowing-up run shows
            // *what* is piling up (usually parked acks in flight).
            if id.is_multiple_of(200_000) && std::env::var_os("INPG_CHECK_SAMPLE").is_some() {
                eprintln!("[sample {id}] {}", next.summary(cfg));
            }
            visited.insert(fp, id);
            parents.push((idx, Some(label)));
            let depth = depths[idx as usize] + 1;
            depths.push(depth);
            max_depth = max_depth.max(depth);
            frontier.push_back((id, next));
        }
    }

    Verdict::Pass(Report {
        states: parents.len() as u64,
        transitions,
        pruned,
        goal_states,
        horizon_states,
        depth: max_depth,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::BugSeed;

    fn expect_pass(cfg: &Config) -> Report {
        match check(cfg) {
            Verdict::Pass(report) => {
                assert!(!report.truncated, "state bound too small: {report:?}");
                assert!(report.goal_states > 0, "no run finished: {report:?}");
                report
            }
            Verdict::Fail(cex) => {
                panic!("unexpected violation:\n{}", cex.render(cfg));
            }
        }
    }

    /// A tighter in-flight bound than the CLI default, so the smoke
    /// tests stay inside their few-second budget even in debug builds.
    /// The bound only trims how many stale acks may pile up in flight;
    /// every protocol path is still exercised.
    fn smoke(cores: usize, barrier: bool) -> Config {
        let mut cfg = Config::bounded(cores, 1, barrier);
        cfg.net_cap = 2 * cores + 4;
        cfg
    }

    /// Tier-1 smoke: the 2-core / 1-line lock loop verifies with the
    /// barrier both off and on, well inside the 5-second budget.
    #[test]
    fn two_cores_one_line_verifies_with_barrier_off() {
        let report = expect_pass(&smoke(2, false));
        assert!(report.states > 50, "suspiciously small space: {report:?}");
    }

    #[test]
    fn two_cores_one_line_verifies_with_barrier_on() {
        let report = expect_pass(&smoke(2, true));
        // The iNPG paths (interception, early invalidation, relays and
        // nondeterministic barrier expiry) must enlarge the space over
        // the barrier-off baseline.
        let off = expect_pass(&smoke(2, false));
        assert!(
            report.states > off.states,
            "barrier on ({}) should explore more than off ({})",
            report.states,
            off.states
        );
    }

    /// Seeding the network to lose an early-invalidation
    /// acknowledgement must produce a counterexample: the ack books
    /// fail to balance at quiescence (or the run wedges outright).
    #[test]
    fn dropped_relayed_ack_is_caught_with_a_minimal_trace() {
        let mut cfg = smoke(2, true);
        cfg.bug = BugSeed::DropRelayedAck;
        match check(&cfg) {
            Verdict::Fail(cex) => {
                assert!(
                    matches!(
                        cex.property,
                        Property::AckConservation { .. } | Property::Deadlock
                    ),
                    "unexpected property: {}",
                    cex.property
                );
                assert!(!cex.steps.is_empty());
                let rendered = cex.render(&cfg);
                assert!(rendered.contains("violated:"), "{rendered}");
            }
            Verdict::Pass(report) => {
                panic!("seeded relay drop was not caught: {report:?}")
            }
        }
    }

    /// A duplicated in-flight `InvAck` must trip the typed surplus-ack
    /// protocol errors.
    #[test]
    fn duplicated_inv_ack_is_caught_as_a_protocol_error() {
        let mut cfg = smoke(2, true);
        cfg.bug = BugSeed::DupInvAck;
        match check(&cfg) {
            Verdict::Fail(cex) => {
                assert!(
                    matches!(cex.property, Property::Protocol(_) | Property::Deadlock),
                    "unexpected property: {}",
                    cex.property
                );
            }
            Verdict::Pass(report) => {
                panic!("seeded duplicate ack was not caught: {report:?}")
            }
        }
    }

    /// Lossy-channel semantics: the adversary may drop one `InvAck` or
    /// `GetX` and every run must *still* reach the goal — the
    /// abort-and-reissue recovery path restores SWMR, ack conservation
    /// and deadlock freedom. The drop/timeout transitions must also
    /// genuinely enlarge the space over the lossless run.
    #[test]
    fn lossy_channel_recovers_with_barrier_on_and_off() {
        for barrier in [false, true] {
            let lossless = expect_pass(&smoke(2, barrier));
            let lossy = expect_pass(&smoke(2, barrier).lossy());
            assert!(
                lossy.states > lossless.states,
                "barrier {barrier}: lossy ({}) should explore more than lossless ({})",
                lossy.states,
                lossless.states
            );
        }
    }

    /// Recovery must not mask genuine protocol bugs: with lossy mode on
    /// *and* the relayed-ack drop seeded, the checker still finds the
    /// conservation violation (the EI ledger has no retransmitter).
    #[test]
    fn lossy_mode_still_catches_the_seeded_relay_drop() {
        let mut cfg = smoke(2, true).lossy();
        cfg.bug = BugSeed::DropRelayedAck;
        match check(&cfg) {
            Verdict::Fail(cex) => {
                assert!(
                    matches!(
                        cex.property,
                        Property::AckConservation { .. } | Property::Deadlock
                    ),
                    "unexpected property: {}",
                    cex.property
                );
            }
            Verdict::Pass(report) => {
                panic!("lossy mode masked the seeded relay drop: {report:?}")
            }
        }
    }

    /// With the retry budget below the drop budget, recovery can be
    /// exhausted; the wedged survivor must be reported as a horizon
    /// state of the bounded search, never as a deadlock.
    #[test]
    fn exhausted_retry_budget_is_a_horizon_not_a_deadlock() {
        let mut cfg = smoke(2, true).lossy();
        cfg.retry_budget = 0;
        let report = expect_pass(&cfg);
        assert!(
            report.horizon_states > 0,
            "some run must wedge with retries exhausted: {report:?}"
        );
    }

    /// The counterexample renderer replays the trace and lands on the
    /// reported violation (the trace is executable, not decorative).
    #[test]
    fn counterexample_traces_replay_to_the_violation() {
        let mut cfg = smoke(2, true);
        cfg.bug = BugSeed::DropRelayedAck;
        let Verdict::Fail(cex) = check(&cfg) else {
            panic!("seeded bug must fail");
        };
        let rendered = cex.render(&cfg);
        assert!(rendered.contains(&format!("counterexample ({} steps)", cex.steps.len())));
        assert!(rendered.trim_end().ends_with(&format!("violated: {}", cex.property)));
    }
}
