//! The bounded world the model checker enumerates: the pure protocol
//! cores wired together through an unordered in-flight message multiset,
//! plus the tiny per-core lock-loop program that drives them.

use inpg_coherence::l1::{L1Outcome, Line};
use inpg_coherence::{CoherenceError, CoherenceMsg, HomeCore, HomeMap, L1Core, MemOp, MemOpKind};
use inpg_noc::packet::{PacketGenPayload, Sink};
use inpg_noc::BarrierFsm;
use inpg_sim::{ids::BLOCK_BYTES, Addr, CoreId, Cycle};
use std::fmt;

/// The tile the single abstract big router sits on. Every lock `GetX`
/// and every router-sunk acknowledgement passes it; the concrete mesh
/// position is irrelevant to the protocol, so tile 0 serves.
pub const ROUTER: CoreId = CoreId::new(0);

/// One protocol fault deliberately planted into a transition class, to
/// demonstrate the checker catches it with a counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugSeed {
    /// No seeded bug: the checker verifies the protocol as implemented.
    None,
    /// An `EarlyInvAck` vanishes in transit before reaching the big
    /// router: no EI-table bookkeeping, no relay to the home. The run
    /// quiesces with the barrier's EI entry still waiting — inv/ack
    /// conservation is violated.
    DropRelayedAck,
    /// Delivering an `InvAck` leaves a duplicate copy in flight — the
    /// surplus acknowledgement trips the typed protocol errors.
    DupInvAck,
}

impl BugSeed {
    /// Parses the CLI spelling of a seed.
    pub fn parse(s: &str) -> Option<BugSeed> {
        match s {
            "none" => Some(BugSeed::None),
            "drop-relayed-ack" => Some(BugSeed::DropRelayedAck),
            "dup-inv-ack" => Some(BugSeed::DupInvAck),
            _ => None,
        }
    }
}

/// Bounds of one exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cores (and home banks). 2–4 are tractable.
    pub cores: usize,
    /// Number of contended lock lines (1–2 are tractable).
    pub lines: usize,
    /// Acquire/release rounds each core performs per line.
    pub rounds: usize,
    /// Whether the abstract big router (iNPG interception) is active.
    pub barrier: bool,
    /// The planted fault, if any.
    pub bug: BugSeed,
    /// In-flight message bound; transitions that would exceed it are
    /// pruned and counted (the verdict is relative to this bound).
    pub net_cap: usize,
    /// Wire-issue (retry) bound per core per lock-loop phase: a
    /// failable CAS can lose and retry forever, so the enumeration
    /// explores up to this many network round trips per acquire or
    /// release attempt. States cut off by the bound are counted as
    /// horizon states, never misreported as deadlocks.
    pub max_issues: u8,
    /// Hard bound on discovered states before the search reports a
    /// truncated (inconclusive) result.
    pub max_states: usize,
    /// Lossy-channel semantics: the adversary may silently drop up to
    /// [`max_drops`](Config::max_drops) droppable messages (`InvAck`
    /// responses and `GetX` requests — the classes the recovery layer
    /// retransmits around), and a wedged core may time out and
    /// abort-and-reissue its exclusive transaction. Models the timed
    /// system's `--recover` path.
    pub lossy: bool,
    /// Messages the adversary may drop per run (lossy mode only).
    pub max_drops: u8,
    /// Abort-and-reissue retransmissions allowed per core (lossy mode
    /// only). Must exceed `max_drops` so recovery always outlasts the
    /// adversary and every lossy run can still reach the goal state.
    pub retry_budget: u8,
}

impl Config {
    /// A tractable default: `cores` cores, one line, one round each.
    ///
    /// The retry budget scales down with the core count: two cores
    /// close with three issues per phase in well under a second, but
    /// at three cores that space exceeds five million states (about
    /// ninety seconds in a release build). The three-and-four-core
    /// defaults keep one issue per phase — every protocol path is
    /// still reached, only repeated CAS-retry laps are cut — and stay
    /// in the low hundreds of thousands of states. Raise
    /// `--max-issues` (with `--max-states`) to widen the horizon.
    pub fn bounded(cores: usize, lines: usize, barrier: bool) -> Config {
        Config {
            cores,
            lines,
            rounds: 1,
            barrier,
            bug: BugSeed::None,
            net_cap: 4 * cores + 4,
            max_issues: if cores >= 3 { 1 } else { 3 },
            max_states: 4_000_000,
            lossy: false,
            max_drops: 1,
            retry_budget: 2,
        }
    }

    /// Switches on lossy-channel semantics (builder style).
    #[must_use]
    pub fn lossy(mut self) -> Config {
        self.lossy = true;
        self
    }

    /// The lock tag core `c` CASes into a lock word (nonzero, unique).
    pub fn tag(core: usize) -> u64 {
        core as u64 + 1
    }

    /// Block address of contended line `i` (block-interleaved homes).
    pub fn line_addr(line: usize) -> Addr {
        Addr::new(line as u64 * BLOCK_BYTES)
    }
}

/// Where a core is in its acquire/release loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Spinning: issue `CAS(0 -> tag)` until it observes 0.
    Acquire,
    /// Holding the lock: issue `Store(0)` to release.
    Release,
}

/// One core's program counter over the lock loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Script {
    /// Current contended line index.
    pub line: u8,
    /// Completed rounds on the current line.
    pub round: u8,
    /// Acquiring or releasing.
    pub phase: Phase,
    /// Wire issues (network round trips) spent on the current phase;
    /// reset whenever the phase advances. Bounded by
    /// [`Config::max_issues`].
    pub issues: u8,
    /// Recovery retransmissions this core has fired (lossy mode only).
    /// Bounded by [`Config::retry_budget`].
    pub retries: u8,
    /// All lines and rounds finished.
    pub done: bool,
}

impl Script {
    fn start() -> Script {
        Script { line: 0, round: 0, phase: Phase::Acquire, issues: 0, retries: 0, done: false }
    }

    /// The next operation this core issues.
    pub fn op(&self, core: usize) -> MemOp {
        let addr = Config::line_addr(self.line as usize);
        match self.phase {
            Phase::Acquire => MemOp {
                addr,
                kind: MemOpKind::CompareSwap { expected: 0, new: Config::tag(core) },
                lock: true,
            },
            Phase::Release => MemOp { addr, kind: MemOpKind::Store(0), lock: true },
        }
    }
}

/// One in-flight protocol message: destination tile, whether the
/// router's packet generator (rather than the network interface)
/// consumes it, and the payload. Kept sorted inside [`World::net`] so
/// equal multisets hash equally.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetMsg {
    /// Destination tile.
    pub dst: CoreId,
    /// `true` for router-sunk messages (`EarlyInvAck`).
    pub to_router: bool,
    /// The protocol message.
    pub msg: CoherenceMsg,
}

/// A labelled transition out of a world state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// Core `core` issues its next script operation.
    Issue {
        /// The issuing core.
        core: usize,
    },
    /// One in-flight message is delivered (and possibly intercepted).
    Deliver {
        /// The delivered message.
        msg: NetMsg,
    },
    /// The barrier on `addr` expires (nondeterministic TTL stand-in;
    /// only enabled while the barrier has no live EI entries).
    Expire {
        /// The barrier's lock line.
        addr: Addr,
    },
    /// The lossy adversary silently drops one in-flight message
    /// (enabled only in lossy mode, for droppable message classes,
    /// while the drop budget lasts).
    Drop {
        /// The message that vanishes.
        msg: NetMsg,
    },
    /// Core `core`'s recovery timer fires: the outstanding exclusive
    /// transaction is aborted and reissued under a fresh sequence
    /// number. Enabled only in lossy mode, while the core is wedged
    /// (no in-flight message can advance its transaction), within the
    /// per-core retry budget — the model-level encoding of a
    /// retransmission timeout that dwarfs the service latency.
    Timeout {
        /// The retransmitting core.
        core: usize,
    },
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Issue { core } => write!(f, "core {core} issues its next op"),
            Label::Deliver { msg } => {
                let sink = if msg.to_router { "router" } else { "NI" };
                write!(f, "deliver to {} ({sink}): {:?}", msg.dst, msg.msg)
            }
            Label::Expire { addr } => write!(f, "barrier on {addr} expires"),
            Label::Drop { msg } => write!(f, "drop in flight to {}: {:?}", msg.dst, msg.msg),
            Label::Timeout { core } => {
                write!(f, "core {core} times out and retransmits its exclusive request")
            }
        }
    }
}

/// A violated property, the payload of a counterexample.
#[derive(Debug, Clone)]
pub enum Property {
    /// Two valid copies coexist with a writable one.
    Swmr {
        /// The multiply-cached block.
        addr: Addr,
        /// Every core holding a valid copy.
        holders: Vec<usize>,
    },
    /// A cached or observed value no program step could have written.
    ValueIntegrity {
        /// The corrupted block.
        addr: Addr,
        /// The impossible value.
        value: u64,
    },
    /// Two cores hold the same lock at once.
    MutualExclusion {
        /// The lock line.
        addr: Addr,
        /// The simultaneous holders.
        holders: Vec<usize>,
    },
    /// A pure step function rejected a message: lost, duplicated or
    /// misrouted traffic upstream (includes surplus-ack conservation
    /// violations).
    Protocol(CoherenceError),
    /// The run quiesced with early-invalidation entries still waiting
    /// for acknowledgements in the big router's barrier table: an
    /// `EarlyInvAck` was lost somewhere upstream.
    AckConservation {
        /// The barrier's lock line.
        addr: Addr,
        /// Cores whose early-invalidation acknowledgement never arrived.
        leaked: Vec<usize>,
    },
    /// A non-final state with no enabled transition: the network
    /// drained while a core still waits (lost ack / lost wakeup).
    Deadlock,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Swmr { addr, holders } => write!(
                f,
                "SWMR violated at {addr}: cores {holders:?} hold valid copies alongside a \
                 writable one"
            ),
            Property::ValueIntegrity { addr, value } => {
                write!(f, "value integrity violated at {addr}: impossible value {value}")
            }
            Property::MutualExclusion { addr, holders } => {
                write!(f, "mutual exclusion violated at {addr}: cores {holders:?} hold the lock")
            }
            Property::Protocol(e) => write!(f, "protocol violation: {e}"),
            Property::AckConservation { addr, leaked } => write!(
                f,
                "inv/ack conservation violated at {addr}: quiesced with early-invalidation \
                 entries for cores {leaked:?} still awaiting acknowledgement"
            ),
            Property::Deadlock => {
                write!(f, "deadlock: no transition enabled in a non-final state")
            }
        }
    }
}

/// One global protocol state: every pure core, the abstract big
/// router's barrier table, the in-flight message multiset and the
/// per-core program counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct World {
    /// The pure L1 controllers.
    pub l1s: Vec<L1Core>,
    /// The pure home directories.
    pub homes: Vec<HomeCore>,
    /// The abstract big router's barrier FSM (`None` = iNPG off).
    pub router: Option<BarrierFsm>,
    /// In-flight messages, kept sorted (canonical multiset).
    pub net: Vec<NetMsg>,
    /// Per-core lock-loop program counters.
    pub scripts: Vec<Script>,
    /// Messages the lossy adversary has dropped so far (bounded by
    /// [`Config::max_drops`]; always 0 outside lossy mode).
    pub drops: u8,
}

impl World {
    /// The initial state of a bounded configuration.
    pub fn init(cfg: &Config) -> World {
        let map = HomeMap::new(cfg.cores);
        let mut homes: Vec<HomeCore> =
            (0..cfg.cores).map(|c| HomeCore::new(CoreId::new(c), 0)).collect();
        for line in 0..cfg.lines {
            let addr = Config::line_addr(line);
            homes[map.home_of(addr).index()].init_block(addr, 0);
        }
        World {
            l1s: (0..cfg.cores).map(|c| L1Core::new(CoreId::new(c), map)).collect(),
            homes,
            router: cfg
                .barrier
                .then(|| BarrierFsm::new(cfg.lines.max(1), cfg.cores, 1)),
            net: Vec::new(),
            scripts: vec![Script::start(); cfg.cores],
            drops: 0,
        }
    }

    /// Whether the lossy adversary may drop `msg`: only the classes the
    /// recovery layer can retransmit around. `EarlyInvAck` stays
    /// undroppable — the barrier's EI ledger has no retransmitter, so
    /// losing one is a genuine conservation violation, not recoverable
    /// noise (and [`World::check_quiescence`] must keep treating it as
    /// such).
    fn droppable(msg: &NetMsg) -> bool {
        !msg.to_router
            && matches!(msg.msg, CoherenceMsg::InvAck { .. } | CoherenceMsg::GetX { .. })
    }

    /// Whether core `core` is wedged: an exclusive transaction is
    /// outstanding and no in-flight message touches its block, so no
    /// delivery can ever advance it. The stand-in for "the recovery
    /// timeout dwarfs the service latency": the timer only fires once
    /// the network has proven unable to finish the transaction.
    pub fn wedged(&self, core: usize) -> bool {
        let Some(pending) = self.l1s[core].pending.as_ref().filter(|p| p.exclusive) else {
            return false;
        };
        let block = pending.op.addr.block();
        !self.net.iter().any(|m| m.msg.addr().block() == block)
    }

    /// Whether this is a legal final state: programs finished, network
    /// drained, no transaction outstanding anywhere.
    pub fn is_goal(&self) -> bool {
        self.net.is_empty()
            && self.scripts.iter().all(|s| s.done)
            && self.l1s.iter().all(|l1| !l1.is_busy())
            && self.homes.iter().all(HomeCore::is_quiet)
    }

    /// Every transition enabled in this state.
    pub fn enabled(&self, cfg: &Config) -> Vec<Label> {
        let mut out = Vec::new();
        for (core, script) in self.scripts.iter().enumerate() {
            if !script.done && !self.l1s[core].is_busy() && script.issues < cfg.max_issues {
                out.push(Label::Issue { core });
            }
        }
        // `net` is sorted, so equal messages are adjacent: one Deliver
        // (and one Drop) label per distinct message avoids symmetric
        // duplicates.
        let mut prev: Option<&NetMsg> = None;
        for msg in &self.net {
            if prev != Some(msg) {
                out.push(Label::Deliver { msg: msg.clone() });
                if cfg.lossy && self.drops < cfg.max_drops && Self::droppable(msg) {
                    out.push(Label::Drop { msg: msg.clone() });
                }
            }
            prev = Some(msg);
        }
        if cfg.lossy {
            for (core, script) in self.scripts.iter().enumerate() {
                if script.retries < cfg.retry_budget && self.wedged(core) {
                    out.push(Label::Timeout { core });
                }
            }
        }
        if let Some(fsm) = &self.router {
            for barrier in &fsm.barriers {
                if barrier.eis.is_empty() {
                    out.push(Label::Expire { addr: barrier.addr });
                }
            }
        }
        out
    }

    /// Applies one transition in place. The caller re-sorts `net` (via
    /// [`World::canon`]) and runs [`World::check_safety`] afterwards.
    ///
    /// # Errors
    ///
    /// The violated [`Property`] when the transition itself exposes one
    /// (a typed protocol error or an impossible observed value).
    ///
    /// # Panics
    ///
    /// Panics if `label` is not enabled in this state (checker-internal
    /// misuse, not a protocol property).
    pub fn apply(&mut self, cfg: &Config, label: &Label) -> Result<(), Property> {
        match label {
            Label::Issue { core } => {
                let op = self.scripts[*core].op(*core);
                let out = self.l1s[*core].issue(op, 0).map_err(Property::Protocol)?;
                if !out.msgs.is_empty() {
                    // A wire issue spends retry budget; a locally-failing
                    // CAS does not (it leaves the state unchanged).
                    let s = &mut self.scripts[*core];
                    s.issues = s.issues.saturating_add(1);
                }
                self.absorb_l1(cfg, *core, out)
            }
            Label::Deliver { msg } => {
                let Some(pos) = self.net.iter().position(|m| m == msg) else {
                    panic!("deliver of a message not in flight: {msg:?}");
                };
                self.net.remove(pos);
                if msg.to_router {
                    self.router_ack(cfg, &msg.msg)
                } else {
                    let keep_duplicate = cfg.bug == BugSeed::DupInvAck
                        && matches!(msg.msg, CoherenceMsg::InvAck { .. });
                    if keep_duplicate {
                        self.net.push(msg.clone());
                    }
                    self.deliver_ni(cfg, msg.dst, msg.msg.clone())
                }
            }
            Label::Expire { addr } => {
                if let Some(fsm) = self.router.as_mut() {
                    let expired = fsm.force_expire(*addr);
                    assert!(expired, "expire of a barrier that is not expirable: {addr}");
                }
                Ok(())
            }
            Label::Drop { msg } => {
                let Some(pos) = self.net.iter().position(|m| m == msg) else {
                    panic!("drop of a message not in flight: {msg:?}");
                };
                self.net.remove(pos);
                self.drops += 1;
                Ok(())
            }
            Label::Timeout { core } => {
                let out = self.l1s[*core].abort_and_reissue().map_err(Property::Protocol)?;
                self.scripts[*core].retries = self.scripts[*core].retries.saturating_add(1);
                self.absorb_l1(cfg, *core, out)
            }
        }
    }

    /// Restores the sorted-multiset canonical form after [`World::apply`].
    pub fn canon(&mut self) {
        self.net.sort_unstable();
    }

    /// Checks the state-predicate safety properties (SWMR, value
    /// integrity, mutual exclusion), returning the first violation.
    pub fn check_safety(&self, cfg: &Config) -> Option<Property> {
        let max_legal = cfg.cores as u64;
        for line in 0..cfg.lines {
            let addr = Config::line_addr(line);
            let mut valid = Vec::new();
            let mut writable = 0usize;
            for (core, l1) in self.l1s.iter().enumerate() {
                if let Some(&Line { state, value }) = l1.lines.get(&addr) {
                    valid.push(core);
                    if state.is_writable() {
                        writable += 1;
                    }
                    if value > max_legal {
                        return Some(Property::ValueIntegrity { addr, value });
                    }
                }
            }
            if writable > 0 && valid.len() > 1 {
                return Some(Property::Swmr { addr, holders: valid });
            }
            let holders: Vec<usize> = self
                .scripts
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.done && s.phase == Phase::Release && s.line as usize == line)
                .map(|(core, _)| core)
                .collect();
            if holders.len() > 1 {
                return Some(Property::MutualExclusion { addr, holders });
            }
        }
        None
    }

    /// Inv/ack conservation at quiescence: a goal state (network
    /// drained, every program finished) must hold no live
    /// early-invalidation entry — each one is a router-generated `Inv`
    /// whose acknowledgement never came back.
    pub fn check_quiescence(&self) -> Option<Property> {
        let fsm = self.router.as_ref()?;
        for barrier in &fsm.barriers {
            if !barrier.eis.is_empty() {
                return Some(Property::AckConservation {
                    addr: barrier.addr,
                    leaked: barrier.eis.iter().map(|e| e.core.index()).collect(),
                });
            }
        }
        None
    }

    /// One compact line of state for counterexample rendering.
    pub fn summary(&self, cfg: &Config) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for line in 0..cfg.lines {
            let addr = Config::line_addr(line);
            let _ = write!(s, "L{line}:[");
            for l1 in &self.l1s {
                let _ = write!(s, "{}", l1.state_letter(addr));
            }
            let _ = write!(s, "] ");
        }
        let _ = write!(s, "pc:[");
        for (core, script) in self.scripts.iter().enumerate() {
            let phase = if script.done {
                "done"
            } else {
                match script.phase {
                    Phase::Acquire => "acq",
                    Phase::Release => "rel",
                }
            };
            let busy = if self.l1s[core].is_busy() { "*" } else { "" };
            let sep = if core == 0 { "" } else { " " };
            let _ = write!(s, "{sep}{phase}{busy}");
        }
        let _ = write!(s, "] in-flight:{}", self.net.len());
        if self.drops > 0 {
            let _ = write!(s, " drops:{}", self.drops);
        }
        if let Some(fsm) = &self.router {
            let _ = write!(s, " barriers:{} eis:{}", fsm.barrier_count(), fsm.ei_count());
        }
        s
    }

    fn route_out(&mut self, env: inpg_coherence::Envelope) {
        self.net.push(NetMsg {
            dst: env.dst,
            to_router: matches!(env.sink, Sink::Router),
            msg: env.msg,
        });
    }

    /// The abstract big router consumes a router-sunk `EarlyInvAck`:
    /// bookkeeping in the barrier FSM, then relay to the home node
    /// (even a stale ack is relayed — the home is the deduplicator).
    fn router_ack(&mut self, cfg: &Config, msg: &CoherenceMsg) -> Result<(), Property> {
        let Some(ack) = msg.as_early_ack() else {
            panic!("router-sunk message that is not an early ack: {msg:?}");
        };
        if cfg.bug == BugSeed::DropRelayedAck {
            // The ack dies in transit: the EI entry it would have
            // retired stays live forever.
            return Ok(());
        }
        if let Some(fsm) = self.router.as_mut() {
            let _ = fsm.take_ack(ack.addr, ack.from);
        }
        let relayed = CoherenceMsg::relayed_ack(ack, Cycle::ZERO);
        self.net.push(NetMsg { dst: ack.home, to_router: false, msg: relayed });
        Ok(())
    }

    /// Delivers a network-interface message, replicating the system
    /// layer's dispatch and the big router's interception decision
    /// (`inpg-noc`'s `decide_action`): stop when a barrier is armed and
    /// EI space remains, install at first sight, pass through when the
    /// EI pool is full.
    fn deliver_ni(
        &mut self,
        cfg: &Config,
        dst: CoreId,
        msg: CoherenceMsg,
    ) -> Result<(), Property> {
        if let Some(req) = msg.as_lock_request() {
            if let Some(fsm) = self.router.as_mut() {
                if fsm.should_stop(req.addr) {
                    let stopped = fsm.stop(req.addr, req.requester);
                    assert!(stopped, "should_stop approved a stop that failed");
                    let inv = CoherenceMsg::early_inv(req, ROUTER, Cycle::ZERO);
                    let fwd = msg.forwarded_getx(Cycle::ZERO);
                    self.net.push(NetMsg { dst: req.home, to_router: false, msg: fwd });
                    // Ordering assumption (the premise of in-network
                    // generation): the early Inv's path, big router →
                    // requester, is strictly shorter than any downstream
                    // effect of the relayed request (big router → home →
                    // owner → requester, plus directory latency), so the
                    // Inv always lands first. An unordered in-flight Inv
                    // would let the checker deliver it *after* the home's
                    // Data response — an interleaving the mesh cannot
                    // produce, which would falsely destroy the winner's
                    // fresh line. Delivering it atomically with the stop
                    // encodes the ordering; the acknowledgement it
                    // triggers still travels (and races) asynchronously.
                    let requester = req.requester;
                    return self.deliver_ni(cfg, requester, inv);
                }
                if !fsm.has_barrier(req.addr) {
                    let _ = fsm.observe_transfer(req.addr);
                }
                // Barrier armed but EI pool full: pass through.
            }
        }
        match msg {
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. }
            | CoherenceMsg::RelayedInvAck { .. }
            | CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. } => {
                let out = self.homes[dst.index()]
                    .process(msg, Cycle::ZERO, Cycle::ZERO)
                    .map_err(Property::Protocol)?;
                for emit in out.emits {
                    self.route_out(emit.env);
                }
                Ok(())
            }
            // The pure layers never emit OS wakeups (they belong to the
            // manycore thread scheduler); absorbing one keeps the
            // dispatch total.
            CoherenceMsg::OsWakeup { .. } => Ok(()),
            CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetX { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::Data { .. }
            | CoherenceMsg::AckCount { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::EarlyInvAck { .. } => {
                let core = dst.index();
                let out = self.l1s[core].handle(msg).map_err(Property::Protocol)?;
                self.absorb_l1(cfg, core, out)
            }
        }
    }

    /// Routes an L1 step's messages and advances the issuing core's
    /// script on completion.
    fn absorb_l1(&mut self, cfg: &Config, core: usize, out: L1Outcome) -> Result<(), Property> {
        for env in out.msgs {
            self.route_out(env);
        }
        if let Some(done) = out.completion {
            if done.value > cfg.cores as u64 {
                return Err(Property::ValueIntegrity {
                    addr: done.op.addr.block(),
                    value: done.value,
                });
            }
            let script = &mut self.scripts[core];
            match script.phase {
                Phase::Acquire => {
                    // The CAS observed the old value; 0 means the swap
                    // happened and the lock is held.
                    if done.value == 0 {
                        script.phase = Phase::Release;
                        script.issues = 0;
                    }
                }
                Phase::Release => {
                    script.phase = Phase::Acquire;
                    script.issues = 0;
                    script.round += 1;
                    if script.round as usize >= cfg.rounds {
                        script.round = 0;
                        script.line += 1;
                        if script.line as usize >= cfg.lines {
                            script.done = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_worlds_are_canonical_and_goalless() {
        let cfg = Config::bounded(2, 1, true);
        let w = World::init(&cfg);
        assert!(!w.is_goal(), "fresh scripts still have work");
        assert!(w.check_safety(&cfg).is_none());
        // Only issues are enabled: nothing is in flight yet.
        let labels = w.enabled(&cfg);
        assert_eq!(labels.len(), 2);
        assert!(labels.iter().all(|l| matches!(l, Label::Issue { .. })));
    }

    #[test]
    fn issue_produces_an_interceptable_lock_getx() {
        let cfg = Config::bounded(2, 1, true);
        let mut w = World::init(&cfg);
        w.apply(&cfg, &Label::Issue { core: 1 }).expect("clean issue");
        w.canon();
        assert_eq!(w.net.len(), 1);
        assert!(w.net[0].msg.as_lock_request().is_some(), "CAS must emit a lock GetX");
    }

    #[test]
    fn first_lock_getx_installs_the_barrier_and_second_is_stopped() {
        let cfg = Config::bounded(2, 1, true);
        let mut w = World::init(&cfg);
        w.apply(&cfg, &Label::Issue { core: 0 }).expect("issue 0");
        w.canon();
        let getx0 = w.net[0].clone();
        w.apply(&cfg, &Label::Deliver { msg: getx0 }).expect("deliver installs");
        w.canon();
        let fsm = w.router.as_ref().expect("barrier on");
        assert_eq!(fsm.barrier_count(), 1, "first transfer installs the barrier");
        assert_eq!(fsm.ei_count(), 0);

        w.apply(&cfg, &Label::Issue { core: 1 }).expect("issue 1");
        w.canon();
        let getx1 = w
            .net
            .iter()
            .find(|m| m.msg.as_lock_request().is_some())
            .expect("lock GetX in flight")
            .clone();
        w.apply(&cfg, &Label::Deliver { msg: getx1 }).expect("deliver stops");
        w.canon();
        let fsm = w.router.as_ref().expect("barrier on");
        assert_eq!(fsm.ei_count(), 1, "second lock GetX is stopped");
        assert!(
            w.net.iter().any(|m| m.to_router
                && matches!(m.msg, CoherenceMsg::EarlyInvAck { .. })),
            "the early Inv lands atomically; its router-sunk ack is in flight"
        );
        assert!(
            w.net.iter().any(|m| matches!(m.msg, CoherenceMsg::RelayedGetX { .. })),
            "stop relays the request to the home"
        );
    }
}
