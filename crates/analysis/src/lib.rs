//! Exhaustive (Murphi-style) model checking of the iNPG protocol state
//! machines, plus the supporting bounded-configuration world model.
//!
//! The simulator's protocol logic lives in three **pure, timing-free
//! cores** — [`L1Core`](inpg_coherence::L1Core) (private cache MOESI),
//! [`HomeCore`](inpg_coherence::HomeCore) (directory + L2 bank) and
//! [`BarrierFsm`](inpg_noc::BarrierFsm) (the big router's locking
//! barrier table). This crate closes the loop: it wires bounded
//! instances of those exact state machines into a [`World`], then
//! breadth-first enumerates **every reachable interleaving** of message
//! deliveries, operation issues and barrier TTL expiries, checking
//! safety properties in each state.
//!
//! # World model
//!
//! * `N` cores (2–4 are tractable), each running a tiny lock loop per
//!   cache line: `CAS(0 -> my_tag)` until it wins, then `Store(0)` to
//!   release. The CAS is lock-flagged and failable, so it exercises the
//!   paper's full demotion / retry / interception surface.
//! * `L` lines (1–2), block-interleaved over the home banks exactly as
//!   [`HomeMap`](inpg_coherence::HomeMap) places them.
//! * One **abstract big router** on the path of every lock `GetX` and
//!   every router-sunk `EarlyInvAck` (the `--barrier on` mode). Its
//!   interception decision replicates `inpg-noc`'s `decide_action`:
//!   stop when a barrier is armed and EI space remains, install at
//!   first sight, pass through when the EI pool is full. Barrier TTL
//!   expiry is a nondeterministic transition
//!   ([`BarrierFsm::force_expire`](inpg_noc::BarrierFsm::force_expire))
//!   so the checker covers every expiry timing without modelling clocks.
//! * The network is an unordered in-flight **message multiset** (the
//!   mesh does not preserve cross-pair ordering), kept sorted so world
//!   states are canonical. Its size is bounded; transitions that would
//!   overflow the bound are pruned **and counted**. Some bound is
//!   inherent — failable-CAS retry laps can park unboundedly many stale
//!   acknowledgements in flight — so the verdict is exhaustive
//!   *relative to the bound*: every execution whose in-flight count
//!   stays within it is covered.
//!
//! # Checked properties
//!
//! 1. **SWMR** — at most one writable (M/E) copy of a block, and no
//!    other valid copy while one exists.
//! 2. **Data-value integrity** — every cached value and every observed
//!    load/RMW value is one the program could legally have written.
//! 3. **Mutual exclusion** — at most one core between CAS-success and
//!    release-store per lock (a lost or duplicated invalidation
//!    acknowledgement breaks this or deadlocks).
//! 4. **Inv/ack conservation** — surplus acknowledgements surface as
//!    typed [`CoherenceError`](inpg_coherence::CoherenceError)s from
//!    the pure step functions; any such error is a counterexample.
//! 5. **Deadlock freedom** — every non-final state has at least one
//!    enabled transition. A lost wakeup or lost acknowledgement shows
//!    up here: the network drains while a core still waits.
//!
//! On a violation the checker reports the **shortest** trace (BFS order
//! guarantees minimality) from the initial state to the violation, one
//! labelled transition per line.
//!
//! # Seeded bugs
//!
//! [`BugSeed`] mutates one transition class to demonstrate the checker
//! catches real protocol-level faults:
//!
//! * [`BugSeed::DropRelayedAck`] — an `EarlyInvAck` vanishes in
//!   transit before the big router sees it (the exact bug class the
//!   simulator's fault-injection `DropAck` plants at the NoC level).
//!   The run quiesces with the barrier's EI entry still waiting for an
//!   acknowledgement that no longer exists: inv/ack conservation.
//! * [`BugSeed::DupInvAck`] — an `InvAck` delivery leaves a duplicate
//!   in flight; the surplus acknowledgement trips the typed
//!   `SurplusInvAck`/`ResponseWithoutTxn` protocol errors.

pub mod checker;
pub mod world;

pub use checker::{check, Counterexample, Report, Verdict};
pub use world::{BugSeed, Config, Label, Property, World};
