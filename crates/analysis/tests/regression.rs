//! Regression: the model checker's headline counterexample class — a
//! lost early-invalidation acknowledgement — replayed as a
//! deterministic scenario in the full timed simulator.
//!
//! The checker proves the abstract claim on the pure state machines:
//! lose one `EarlyInvAck` and the run quiesces with the inv/ack books
//! unbalanced (`Property::AckConservation`). The timed simulator plants
//! the same fault at the NoC level (`FaultKind::DropAck` swallows a
//! router-consumed early ack instead of relaying it) and its invariant
//! checker must catch the same conservation breakage. One bug class,
//! caught at both abstraction levels.

use inpg_analysis::{check, BugSeed, Config, Property, Verdict};
use inpg_locks::LockPrimitive;
use inpg_manycore::{
    InvariantViolation, LockPlacement, SimError, System, SystemConfig, ThreadProgram,
};
use inpg_noc::{BigRouterPlacement, FaultKind, FaultPlan, NocConfig};
use inpg_sim::{CoreId, LockId};

/// The ticket-lock storm from the robustness suite: spinners hold
/// shared copies of the hot line, so acquires collect invalidation
/// acknowledgements — the traffic pattern whose acks are load-bearing.
fn ticket_system(faults: FaultPlan) -> System {
    let mut cfg = SystemConfig::baseline();
    cfg.noc = NocConfig {
        width: 4,
        height: 4,
        placement: BigRouterPlacement::All,
        ..NocConfig::baseline()
    };
    cfg.primitive = LockPrimitive::Ticket;
    cfg.max_cycles = 3_000_000;
    cfg.sleep_entry_cycles = 200;
    cfg.wakeup_cycles = 300;
    cfg.noc.faults = faults;
    cfg.invariant_check_interval = Some(64);
    let programs: Vec<ThreadProgram> = (0..16)
        .map(|_| ThreadProgram::new().rounds(8, 0, LockId::new(0), 10))
        .collect();
    System::new(cfg, programs, 1, LockPlacement::At(CoreId::new(5))).unwrap()
}

/// The abstract side: the checker finds a minimal trace from the
/// initial state to an unbalanced quiescent state.
#[test]
fn checker_flags_lost_early_ack_as_conservation_violation() {
    let mut cfg = Config::bounded(2, 1, true);
    cfg.bug = BugSeed::DropRelayedAck;
    let Verdict::Fail(cex) = check(&cfg) else {
        panic!("losing an early ack must violate a property");
    };
    assert!(
        matches!(cex.property, Property::AckConservation { .. } | Property::Deadlock),
        "wrong property: {}",
        cex.property
    );
    // The trace is executable: replaying it reproduces the violation.
    let rendered = cex.render(&cfg);
    assert!(
        rendered.trim_end().ends_with(&format!("violated: {}", cex.property)),
        "{rendered}"
    );
}

/// The concrete side: the same fault class planted in the timed NoC
/// wedges the winner, and the simulator's invariant checker names the
/// conservation breakage on the lock line. The simulator is
/// deterministic, so the first load-bearing ack ordinal found by the
/// scan reproduces identically.
#[test]
fn simulator_reproduces_the_lost_ack_counterexample_class() {
    let mut caught = None;
    for nth in 1..=64u64 {
        let mut system = ticket_system(FaultPlan::none().with(FaultKind::DropAck { nth }));
        if let Err(e) = system.run_checked() {
            caught = Some((nth, e, system));
            break;
        }
    }
    let Some((nth, err, system)) = caught else {
        panic!("no dropped ack in 1..=64 wedged the ticket workload");
    };
    match err {
        SimError::Invariant(InvariantViolation::AckConservation {
            addr, expected, received, ..
        }) => {
            assert!(received < expected, "{received} acks must be short of {expected}");
            let lock_addr = system.lock_primary(LockId::new(0));
            assert_eq!(addr.block(), lock_addr.block(), "violation must name the lock line");
            assert_eq!(system.noc_stats().acks_dropped_by_fault, 1, "ordinal {nth} dropped once");
        }
        other => panic!("expected ack-conservation, got {other:?}"),
    }
}
